package uarch

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"
	"sort"

	"harpocrates/internal/ace"
	"harpocrates/internal/arch"
	"harpocrates/internal/coverage"
	"harpocrates/internal/isa"
)

// Golden artifact bundle and its stable HXGA codec.
//
// A fault-injection campaign's expensive fixed cost is the instrumented
// golden run: the naive-loop execution that produces the golden Result
// (with ACE interval logs), the fast-forward checkpoints and the delta
// trajectory every faulty run rides on. GoldenArtifacts packages those
// outputs as one shareable, serializable value so the inject package's
// golden cache can compute them once per (program, config) and reuse
// them across structures, shards and worker restarts.
//
// Serializing a Checkpoint means serializing a full Core snapshot. The
// codec's field inventory deliberately mirrors Core.copyFrom — the
// authoritative list of what constitutes dynamic simulator state — and
// the same exclusions apply: run-loop scratch (progressed, wbReadyAt,
// skipped), delta arming (re-derived by RestoreFrom) and per-run
// instrumentation (trackers, recorders, trace sinks) are not state.
// ROB entries outside the live window ∪ in-flight set hold dead values
// that rename always resets before reuse, exactly as pooled-core copies
// carry them; only the live subset is serialized. The memory digest is
// recomputed lazily on the decode side — it is content-pure, so it
// matches the encode side's forced-live digest bit for bit.
//
// Cacheable golden runs never enable ACE trackers or IBR tracking (the
// inject cacheability gate refuses such configs), so µop ACE/IBR event
// buffers are empty by construction; the encoder refuses non-empty ones
// rather than silently dropping state.

// GoldenArtifacts bundles everything a campaign derives from one golden
// instrumented run. Checkpoints are in ascending cycle order; Trajectory
// and the Result's interval recorders may be shared read-only across any
// number of concurrent faulty runs.
type GoldenArtifacts struct {
	Result      *Result
	Checkpoints []*Checkpoint
	Trajectory  *DeltaTrajectory
}

// Release returns every pooled resource the bundle references (interval
// recorders, checkpoint cores, the trajectory) and clears the fields.
// Idempotent and nil-safe.
func (ga *GoldenArtifacts) Release() {
	if ga == nil {
		return
	}
	if ga.Result != nil {
		ace.ReleaseIntervalRecorder(ga.Result.IRFIntervals)
		ace.ReleaseIntervalRecorder(ga.Result.FPRFIntervals)
		ace.ReleaseIntervalRecorder(ga.Result.L1DIntervals)
		ga.Result.IRFIntervals = nil
		ga.Result.FPRFIntervals = nil
		ga.Result.L1DIntervals = nil
	}
	for _, ck := range ga.Checkpoints {
		ck.Release()
	}
	ga.Checkpoints = nil
	ReleaseDeltaTrajectory(ga.Trajectory)
	ga.Trajectory = nil
}

// ApproxBytes estimates the bundle's in-memory footprint, dominated by
// the checkpoint cores' memory images, cache SRAM and register files —
// the number the golden cache's bytes gauge and eviction sizing use.
func (ga *GoldenArtifacts) ApproxBytes() int {
	if ga == nil {
		return 0
	}
	n := 0
	if r := ga.Result; r != nil {
		n += 256
		n += r.IRFIntervals.ApproxBytes()
		n += r.FPRFIntervals.ApproxBytes()
		n += r.L1DIntervals.ApproxBytes()
	}
	if t := ga.Trajectory; t != nil {
		n += 32 * cap(t.Points)
	}
	for _, ck := range ga.Checkpoints {
		if ck == nil || ck.core == nil {
			continue
		}
		cp := ck.core
		for _, reg := range cp.mem.Regions() {
			n += len(reg.Data)
		}
		n += len(cp.cache.data) + 48*len(cp.cache.lines)
		if cp.cache.l2 != nil {
			n += 17 * len(cp.cache.l2.tag)
		}
		n += 8*len(cp.intPRF) + 16*len(cp.fpPRF) + len(cp.flagPRF)
		n += 160 * len(cp.rob)
		n += len(cp.bp.table)
	}
	return n
}

// HXGA container framing.
const (
	goldenMagic   uint32 = 0x41475848 // "HXGA" little-endian
	goldenVersion uint32 = 1

	// maxGoldenElems bounds any decoded slice length (checkpoints,
	// regions, queue lengths); generous but refuses corrupt frames.
	maxGoldenElems = 1 << 28
)

// scrubGoldenConfig clears the per-run instrumentation flags from a
// checkpoint core's config before it travels: a restored core never
// carries trackers or recorders (copyFrom sets them nil), so the
// decode-side init must not draw them.
func scrubGoldenConfig(cfg Config) Config {
	cfg.TrackIRF = false
	cfg.TrackL1D = false
	cfg.TrackFPRF = false
	cfg.TrackIBR = false
	cfg.RecordIRFIntervals = false
	cfg.RecordFPRFIntervals = false
	cfg.RecordL1DIntervals = false
	return cfg
}

// --- encoder ----------------------------------------------------------

type gaEnc struct{ buf []byte }

func (e *gaEnc) u8(v uint8)   { e.buf = append(e.buf, v) }
func (e *gaEnc) u16(v uint16) { e.buf = binary.LittleEndian.AppendUint16(e.buf, v) }
func (e *gaEnc) u32(v uint32) { e.buf = binary.LittleEndian.AppendUint32(e.buf, v) }
func (e *gaEnc) u64(v uint64) { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }
func (e *gaEnc) i64(v int64)  { e.u64(uint64(v)) }
func (e *gaEnc) f64(v float64) {
	e.u64(math.Float64bits(v))
}
func (e *gaEnc) boolean(v bool) {
	if v {
		e.u8(1)
	} else {
		e.u8(0)
	}
}
func (e *gaEnc) bytes(b []byte) {
	e.u32(uint32(len(b)))
	e.buf = append(e.buf, b...)
}

func (e *gaEnc) inst(in *isa.Inst) {
	e.u16(uint16(in.V))
	e.u8(in.NOps)
	for i := range in.Ops {
		op := &in.Ops[i]
		e.u8(uint8(op.Kind))
		e.u8(uint8(op.Reg))
		e.u8(uint8(op.X))
		e.i64(op.Imm)
		e.u8(uint8(op.Mem.Base))
		e.boolean(op.Mem.HasIndex)
		e.u8(uint8(op.Mem.Index))
		e.u8(op.Mem.Scale)
		e.u32(uint32(op.Mem.Disp))
	}
}

func (e *gaEnc) crash(err *arch.CrashError) {
	if err == nil {
		e.u8(0)
		return
	}
	e.u8(1)
	e.u8(uint8(err.Kind))
	e.u64(err.Addr)
	e.i64(int64(err.PC))
	e.u8(uint8(err.Exc))
}

func (e *gaEnc) recorder(r *ace.IntervalRecorder) {
	if r == nil {
		e.u8(0)
		return
	}
	e.u8(1)
	e.buf = ace.AppendIntervalRecorder(e.buf, r)
}

func (e *gaEnc) result(r *Result) {
	e.u64(r.Cycles)
	e.u64(r.Instructions)
	e.f64(r.IRFVuln)
	e.f64(r.L1DVuln)
	e.f64(r.FPRFVuln)
	for s := 0; s < int(coverage.NumStructures); s++ {
		e.f64(r.IBR[s])
		e.u64(r.UnitUses[s])
	}
	e.crash(r.Crash)
	e.u8(uint8(r.Trap))
	e.boolean(r.TimedOut)
	e.u64(r.Signature)
	e.boolean(r.Reconverged)
	e.u64(r.Branches)
	e.u64(r.Mispredicts)
	e.u64(r.Flushes)
	e.u64(r.CacheHits)
	e.u64(r.CacheMisses)
	e.u64(r.Writebacks)
	e.u64(r.L2Hits)
	e.u64(r.L2Misses)
	e.u64(r.Prefetches)
	e.recorder(r.IRFIntervals)
	e.recorder(r.FPRFIntervals)
	e.recorder(r.L1DIntervals)
}

// core serializes one checkpoint core — the dynamic-state inventory of
// Core.copyFrom in stable binary form.
func (e *gaEnc) core(cp *Core) error {
	if cp.irf != nil || cp.fprf != nil || cp.cache.tracker != nil ||
		cp.recIRF != nil || cp.recFPRF != nil || cp.cache.rec != nil {
		return fmt.Errorf("uarch: golden codec cannot serialize a core with ACE instrumentation attached")
	}

	// Architectural memory image.
	regions := cp.mem.Regions()
	e.u32(uint32(len(regions)))
	for _, r := range regions {
		e.bytes([]byte(r.Name))
		e.u64(r.Base)
		e.boolean(r.Writable)
		e.bytes(r.Data)
	}

	// Scratch architectural execution state (nondet stream position).
	st := &cp.execState
	for _, g := range st.GPR {
		e.u64(g)
	}
	for _, x := range st.XMM {
		e.u64(x[0])
		e.u64(x[1])
	}
	e.u8(uint8(st.Flags))
	e.i64(int64(st.PC))
	e.u64(st.NondetSalt)
	e.u64(st.NondetCounter())
	e.u64(st.InstRet)

	e.u64(cp.cycle)
	e.u64(cp.seq)
	e.u64(cp.instret)

	// Front end.
	e.i64(int64(cp.fetchPC))
	e.u64(cp.fetchStallUntil)
	e.u32(uint32(len(cp.fq)))
	for i := range cp.fq {
		f := &cp.fq[i]
		e.i64(int64(f.pc))
		e.i64(int64(f.predNext))
		e.boolean(f.poison)
		e.boolean(f.mutated)
		e.boolean(f.bad)
	}
	e.boolean(cp.decArmed)
	e.i64(int64(cp.decBit))
	e.inst(&cp.decInst)

	// Rename maps.
	for _, p := range cp.rat.intRAT {
		e.u16(p)
	}
	for _, p := range cp.rat.fpRAT {
		e.u16(p)
	}
	e.u16(cp.rat.flagRAT)

	// Physical register files, ready bits and free lists.
	e.u32(uint32(len(cp.intPRF)))
	for i, v := range cp.intPRF {
		e.u64(v)
		e.boolean(cp.intReady[i])
	}
	e.u32(uint32(len(cp.intFree)))
	for _, r := range cp.intFree {
		e.u16(r)
	}
	e.u32(uint32(len(cp.fpPRF)))
	for i, v := range cp.fpPRF {
		e.u64(v[0])
		e.u64(v[1])
		e.boolean(cp.fpReady[i])
	}
	e.u32(uint32(len(cp.fpFree)))
	for _, r := range cp.fpFree {
		e.u16(r)
	}
	e.u32(uint32(len(cp.flagPRF)))
	for i, v := range cp.flagPRF {
		e.u8(uint8(v))
		e.boolean(cp.flagRdy[i])
	}
	e.u32(uint32(len(cp.flagFree)))
	for _, r := range cp.flagFree {
		e.u16(r)
	}

	// ROB: geometry, then the live window ∪ in-flight entries (sorted by
	// index for a deterministic byte stream). Everything else is dead —
	// rename resets an entry before reusing it.
	e.u32(uint32(len(cp.rob)))
	e.u32(uint32(cp.robHead))
	e.u32(uint32(cp.robCnt))
	live := make(map[int]struct{}, cp.robCnt+len(cp.inflight))
	for k := 0; k < cp.robCnt; k++ {
		live[(cp.robHead+k)%len(cp.rob)] = struct{}{}
	}
	for _, idx := range cp.inflight {
		live[idx] = struct{}{}
	}
	idxs := make([]int, 0, len(live))
	for idx := range live {
		idxs = append(idxs, idx)
	}
	sort.Ints(idxs)
	e.u32(uint32(len(idxs)))
	for _, idx := range idxs {
		u := &cp.rob[idx]
		if len(u.events) != 0 || len(u.ibr) != 0 {
			return fmt.Errorf("uarch: golden codec cannot serialize a µop with buffered ACE/IBR events")
		}
		e.u32(uint32(idx))
		e.u64(u.seq)
		e.i64(int64(u.pc))
		e.u8(uint8(u.st))
		e.boolean(u.isLoad)
		e.boolean(u.isStore)
		e.boolean(u.poison)
		e.boolean(u.mutated)
		e.boolean(u.bad)
		e.boolean(u.snapValid)
		e.boolean(u.squashed)
		e.u64(u.doneAt)
		e.i64(int64(u.memLat))
		e.u8(u.waitSrc)
		e.i64(int64(u.predNext))
		e.i64(int64(u.actualNext))
		e.u32(uint32(len(u.srcs)))
		for _, s := range u.srcs {
			e.u8(s.cls)
			e.u8(s.arch)
			e.u16(s.bits)
			e.u16(s.phys)
		}
		e.u32(uint32(len(u.dsts)))
		for _, d := range u.dsts {
			e.u8(d.cls)
			e.u8(d.arch)
			e.u16(d.phys)
			e.u16(d.old)
		}
		if u.snapValid {
			for _, p := range u.snap.intRAT {
				e.u16(p)
			}
			for _, p := range u.snap.fpRAT {
				e.u16(p)
			}
			e.u16(u.snap.flagRAT)
		}
		e.crash(u.err)
		e.u32(uint32(len(u.writes)))
		for _, w := range u.writes {
			e.u64(w.addr)
			e.u64(w.data)
			e.u8(w.size)
		}
	}

	// Scheduler queues (ROB indices).
	for _, q := range [][]int{cp.iq, cp.sq, cp.inflight} {
		e.u32(uint32(len(q)))
		for _, idx := range q {
			e.i64(int64(idx))
		}
	}

	// Branch predictor.
	e.u64(cp.bp.history)
	e.bytes(cp.bp.table)

	// L1D lines, flat SRAM and stats.
	e.u64(cp.cache.hits)
	e.u64(cp.cache.misses)
	e.u64(cp.cache.writebacks)
	e.u32(uint32(len(cp.cache.lines)))
	for i := range cp.cache.lines {
		l := &cp.cache.lines[i]
		e.boolean(l.valid)
		e.boolean(l.dirty)
		e.u64(l.tag)
		e.u64(l.lastUse)
	}
	e.bytes(cp.cache.data)

	// L2 tag array.
	if l2 := cp.cache.l2; l2 != nil {
		e.u8(1)
		e.u64(l2.hits)
		e.u64(l2.misses)
		e.u64(l2.prefetches)
		e.u32(uint32(len(l2.tag)))
		for i := range l2.tag {
			e.boolean(l2.valid[i])
			e.u64(l2.tag[i])
			e.u64(l2.lastUse[i])
		}
	} else {
		e.u8(0)
	}

	// Counters and scratch that binds future behaviour.
	e.u64(cp.branches)
	e.u64(cp.mispredicts)
	e.u64(cp.flushes)
	e.i64(int64(cp.nLoads))
	e.i64(int64(cp.nStores))
	e.i64(int64(cp.memPortsUsed))
	for _, v := range cp.unitUsed {
		e.i64(int64(v))
	}
	e.u64(cp.divBusyUntil[0])
	e.u64(cp.divBusyUntil[1])
	e.u64(cp.oldestUnexecStore)
	e.u64(cp.streamDigest)
	for s := 0; s < int(coverage.NumStructures); s++ {
		e.u64(cp.ibrC[s].EffBits)
		e.u64(cp.ibrC[s].Uses)
	}
	e.crash(cp.crash)
	e.boolean(cp.timedOut)
	e.boolean(cp.finished)
	return nil
}

// EncodeGoldenArtifacts serializes a bundle into its HXGA bytes.
func EncodeGoldenArtifacts(ga *GoldenArtifacts) ([]byte, error) {
	if ga == nil || ga.Result == nil {
		return nil, fmt.Errorf("uarch: golden codec needs a result")
	}
	e := &gaEnc{buf: make([]byte, 0, 1<<16)}
	e.u32(goldenMagic)
	e.u32(goldenVersion)

	// The checkpoint cores' scalar configuration, once for the bundle
	// (every checkpoint of one golden run shares it; hook fields carry
	// json:"-" and drop out, exactly as on the dist wire). The
	// instrumentation flags are scrubbed: a restored core never carries
	// trackers or recorders, so the decode-side init must not draw them —
	// and scrubbing here (not just at decode) makes re-encoding a decoded
	// bundle byte-identical.
	var cfgJSON []byte
	if len(ga.Checkpoints) > 0 {
		ck := ga.Checkpoints[0]
		if ck == nil || ck.core == nil {
			return nil, fmt.Errorf("uarch: golden codec given a released checkpoint")
		}
		cfg := scrubGoldenConfig(ck.core.cfg)
		var err error
		cfgJSON, err = json.Marshal(cfg)
		if err != nil {
			return nil, fmt.Errorf("uarch: golden codec config: %w", err)
		}
	}
	e.bytes(cfgJSON)

	e.result(ga.Result)

	if t := ga.Trajectory; t != nil {
		e.u8(1)
		e.u64(t.Interval)
		e.u32(uint32(len(t.Points)))
		for _, p := range t.Points {
			e.u64(p.Cycle)
			e.u64(p.Instret)
			e.u64(p.Stream)
			e.u64(p.State)
		}
	} else {
		e.u8(0)
	}

	e.u32(uint32(len(ga.Checkpoints)))
	for _, ck := range ga.Checkpoints {
		if ck == nil || ck.core == nil {
			return nil, fmt.Errorf("uarch: golden codec given a released checkpoint")
		}
		e.u64(ck.cycle)
		if err := e.core(ck.core); err != nil {
			return nil, err
		}
	}
	return e.buf, nil
}

// --- decoder ----------------------------------------------------------

type gaDec struct {
	data []byte
	off  int
	err  error
}

func (d *gaDec) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("uarch: golden codec: "+format, args...)
	}
}

func (d *gaDec) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if len(d.data)-d.off < n {
		d.fail("truncated at offset %d (need %d bytes)", d.off, n)
		return nil
	}
	b := d.data[d.off : d.off+n]
	d.off += n
	return b
}

func (d *gaDec) u8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}
func (d *gaDec) u16() uint16 {
	b := d.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}
func (d *gaDec) u32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}
func (d *gaDec) u64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}
func (d *gaDec) i64() int64    { return int64(d.u64()) }
func (d *gaDec) f64() float64  { return math.Float64frombits(d.u64()) }
func (d *gaDec) boolean() bool { return d.u8() != 0 }
func (d *gaDec) length() int {
	n := d.u32()
	if n > maxGoldenElems {
		d.fail("length %d exceeds limit", n)
		return 0
	}
	return int(n)
}
func (d *gaDec) bytes() []byte {
	n := d.length()
	b := d.take(n)
	if b == nil {
		return nil
	}
	out := make([]byte, n)
	copy(out, b)
	return out
}

func (d *gaDec) inst(in *isa.Inst) {
	in.V = isa.VariantID(d.u16())
	in.NOps = d.u8()
	for i := range in.Ops {
		op := &in.Ops[i]
		op.Kind = isa.OpKind(d.u8())
		op.Reg = isa.Reg(d.u8())
		op.X = isa.XReg(d.u8())
		op.Imm = d.i64()
		op.Mem.Base = isa.Reg(d.u8())
		op.Mem.HasIndex = d.boolean()
		op.Mem.Index = isa.Reg(d.u8())
		op.Mem.Scale = d.u8()
		op.Mem.Disp = int32(d.u32())
	}
}

func (d *gaDec) crash() *arch.CrashError {
	if d.u8() == 0 {
		return nil
	}
	return &arch.CrashError{
		Kind: arch.CrashKind(d.u8()),
		Addr: d.u64(),
		PC:   int(d.i64()),
		Exc:  isa.Exception(d.u8()),
	}
}

func (d *gaDec) recorder() *ace.IntervalRecorder {
	if d.err != nil || d.u8() == 0 {
		return nil
	}
	r, n, err := ace.DecodeIntervalRecorder(d.data[d.off:])
	if err != nil {
		d.fail("%v", err)
		return nil
	}
	d.off += n
	return r
}

func (d *gaDec) result() *Result {
	r := &Result{}
	r.Cycles = d.u64()
	r.Instructions = d.u64()
	r.IRFVuln = d.f64()
	r.L1DVuln = d.f64()
	r.FPRFVuln = d.f64()
	for s := 0; s < int(coverage.NumStructures); s++ {
		r.IBR[s] = d.f64()
		r.UnitUses[s] = d.u64()
	}
	r.Crash = d.crash()
	r.Trap = isa.Exception(d.u8())
	r.TimedOut = d.boolean()
	r.Signature = d.u64()
	r.Reconverged = d.boolean()
	r.Branches = d.u64()
	r.Mispredicts = d.u64()
	r.Flushes = d.u64()
	r.CacheHits = d.u64()
	r.CacheMisses = d.u64()
	r.Writebacks = d.u64()
	r.L2Hits = d.u64()
	r.L2Misses = d.u64()
	r.Prefetches = d.u64()
	r.IRFIntervals = d.recorder()
	r.FPRFIntervals = d.recorder()
	r.L1DIntervals = d.recorder()
	return r
}

// core decodes one checkpoint core: a fresh pooled core is initialized
// from the decoded memory image and scrubbed config, then every dynamic
// field is patched from the stream.
func (d *gaDec) core(prog []isa.Inst, cfg Config) *Core {
	// Memory image.
	mem := arch.NewMemory()
	nr := d.length()
	for i := 0; i < nr && d.err == nil; i++ {
		name := string(d.bytes())
		base := d.u64()
		writable := d.boolean()
		data := d.bytes()
		if d.err != nil {
			break
		}
		if err := mem.AddRegion(&arch.Region{Name: name, Base: base, Data: data, Writable: writable}); err != nil {
			d.fail("region %q: %v", name, err)
		}
	}
	if d.err != nil {
		return nil
	}

	cp := getPooledCore()
	release := func() *Core {
		putPooledCore(cp)
		return nil
	}
	cp.init(prog, arch.NewState(mem), cfg)

	st := &cp.execState
	for i := range st.GPR {
		st.GPR[i] = d.u64()
	}
	for i := range st.XMM {
		st.XMM[i][0] = d.u64()
		st.XMM[i][1] = d.u64()
	}
	st.Flags = isa.Flags(d.u8())
	st.PC = int(d.i64())
	st.NondetSalt = d.u64()
	st.RestoreNondetCounter(d.u64())
	st.InstRet = d.u64()
	st.Mem = nil
	st.FU = nil

	cp.cycle = d.u64()
	cp.seq = d.u64()
	cp.instret = d.u64()

	cp.fetchPC = int(d.i64())
	cp.fetchStallUntil = d.u64()
	nfq := d.length()
	cp.fq = cp.fq[:0]
	for i := 0; i < nfq && d.err == nil; i++ {
		cp.fq = append(cp.fq, fqEntry{
			pc:       int(d.i64()),
			predNext: int(d.i64()),
			poison:   d.boolean(),
			mutated:  d.boolean(),
			bad:      d.boolean(),
		})
	}
	cp.decArmed = d.boolean()
	cp.decBit = int(d.i64())
	d.inst(&cp.decInst)

	for i := range cp.rat.intRAT {
		cp.rat.intRAT[i] = d.u16()
	}
	for i := range cp.rat.fpRAT {
		cp.rat.fpRAT[i] = d.u16()
	}
	cp.rat.flagRAT = d.u16()

	if n := d.length(); n != len(cp.intPRF) {
		d.fail("int PRF size %d does not match config %d", n, len(cp.intPRF))
		return release()
	}
	for i := range cp.intPRF {
		cp.intPRF[i] = d.u64()
		cp.intReady[i] = d.boolean()
	}
	cp.intFree = cp.intFree[:0]
	for i, n := 0, d.length(); i < n && d.err == nil; i++ {
		cp.intFree = append(cp.intFree, d.u16())
	}
	if n := d.length(); n != len(cp.fpPRF) {
		d.fail("fp PRF size %d does not match config %d", n, len(cp.fpPRF))
		return release()
	}
	for i := range cp.fpPRF {
		cp.fpPRF[i][0] = d.u64()
		cp.fpPRF[i][1] = d.u64()
		cp.fpReady[i] = d.boolean()
	}
	cp.fpFree = cp.fpFree[:0]
	for i, n := 0, d.length(); i < n && d.err == nil; i++ {
		cp.fpFree = append(cp.fpFree, d.u16())
	}
	if n := d.length(); n != len(cp.flagPRF) {
		d.fail("flag PRF size %d does not match config %d", n, len(cp.flagPRF))
		return release()
	}
	for i := range cp.flagPRF {
		cp.flagPRF[i] = isa.Flags(d.u8())
		cp.flagRdy[i] = d.boolean()
	}
	cp.flagFree = cp.flagFree[:0]
	for i, n := 0, d.length(); i < n && d.err == nil; i++ {
		cp.flagFree = append(cp.flagFree, d.u16())
	}

	if n := d.length(); n != len(cp.rob) {
		d.fail("ROB size %d does not match config %d", n, len(cp.rob))
		return release()
	}
	cp.robHead = int(d.u32())
	cp.robCnt = int(d.u32())
	if cp.robHead >= len(cp.rob) || cp.robCnt > len(cp.rob) {
		d.fail("ROB window [%d,%d) out of range", cp.robHead, cp.robCnt)
		return release()
	}
	nuops := d.length()
	for k := 0; k < nuops && d.err == nil; k++ {
		idx := int(d.u32())
		if idx >= len(cp.rob) {
			d.fail("µop index %d out of range", idx)
			return release()
		}
		u := &cp.rob[idx]
		u.reset()
		u.seq = d.u64()
		u.pc = int(d.i64())
		u.st = uopState(d.u8())
		u.isLoad = d.boolean()
		u.isStore = d.boolean()
		u.poison = d.boolean()
		u.mutated = d.boolean()
		u.bad = d.boolean()
		u.snapValid = d.boolean()
		u.squashed = d.boolean()
		u.doneAt = d.u64()
		u.memLat = int(d.i64())
		u.waitSrc = d.u8()
		u.predNext = int(d.i64())
		u.actualNext = int(d.i64())
		for i, n := 0, d.length(); i < n && d.err == nil; i++ {
			u.srcs = append(u.srcs, rsrc{
				cls: d.u8(), arch: d.u8(), bits: d.u16(), phys: d.u16(),
			})
		}
		for i, n := 0, d.length(); i < n && d.err == nil; i++ {
			u.dsts = append(u.dsts, rdst{
				cls: d.u8(), arch: d.u8(), phys: d.u16(), old: d.u16(),
			})
		}
		if u.snapValid {
			for i := range u.snap.intRAT {
				u.snap.intRAT[i] = d.u16()
			}
			for i := range u.snap.fpRAT {
				u.snap.fpRAT[i] = d.u16()
			}
			u.snap.flagRAT = d.u16()
		}
		u.err = d.crash()
		for i, n := 0, d.length(); i < n && d.err == nil; i++ {
			u.writes = append(u.writes, storeWrite{
				addr: d.u64(), data: d.u64(), size: d.u8(),
			})
		}
		if d.err != nil {
			return release()
		}
		// The variant and instruction pointers are reconstructed, not
		// serialized — renameOne's exact rules: poison/bad entries carry
		// the zero variant and no instruction; mutated entries execute the
		// core's corrupted decInst; everything else points at the shared
		// program image.
		switch {
		case u.poison || u.bad:
			u.v = isa.Lookup(0)
			u.inst = nil
		case u.mutated:
			u.inst = &cp.decInst
			u.v = isa.Lookup(cp.decInst.V)
		default:
			if u.pc < 0 || u.pc >= len(prog) {
				d.fail("µop pc %d outside program of %d instructions", u.pc, len(prog))
				return release()
			}
			u.inst = &cp.prog[u.pc]
			u.v = isa.Lookup(u.inst.V)
		}
	}

	for _, q := range []*[]int{&cp.iq, &cp.sq, &cp.inflight} {
		*q = (*q)[:0]
		for i, n := 0, d.length(); i < n && d.err == nil; i++ {
			idx := int(d.i64())
			if idx < 0 || idx >= len(cp.rob) {
				d.fail("queue index %d out of range", idx)
				return release()
			}
			*q = append(*q, idx)
		}
	}

	cp.bp.history = d.u64()
	table := d.bytes()
	if d.err == nil && len(table) != len(cp.bp.table) {
		d.fail("gshare table size %d does not match config %d", len(table), len(cp.bp.table))
		return release()
	}
	copy(cp.bp.table, table)

	cp.cache.hits = d.u64()
	cp.cache.misses = d.u64()
	cp.cache.writebacks = d.u64()
	if n := d.length(); n != len(cp.cache.lines) {
		d.fail("L1D line count %d does not match config %d", n, len(cp.cache.lines))
		return release()
	}
	for i := range cp.cache.lines {
		l := &cp.cache.lines[i]
		l.valid = d.boolean()
		l.dirty = d.boolean()
		l.tag = d.u64()
		l.lastUse = d.u64()
	}
	sram := d.bytes()
	if d.err == nil && len(sram) != len(cp.cache.data) {
		d.fail("L1D SRAM size %d does not match config %d", len(sram), len(cp.cache.data))
		return release()
	}
	copy(cp.cache.data, sram)

	hasL2 := d.u8() == 1
	if d.err == nil && hasL2 != (cp.cache.l2 != nil) {
		d.fail("L2 presence does not match config")
		return release()
	}
	if hasL2 && d.err == nil {
		l2 := cp.cache.l2
		l2.hits = d.u64()
		l2.misses = d.u64()
		l2.prefetches = d.u64()
		if n := d.length(); n != len(l2.tag) {
			d.fail("L2 tag count %d does not match config %d", n, len(l2.tag))
			return release()
		}
		for i := range l2.tag {
			l2.valid[i] = d.boolean()
			l2.tag[i] = d.u64()
			l2.lastUse[i] = d.u64()
		}
	}

	cp.branches = d.u64()
	cp.mispredicts = d.u64()
	cp.flushes = d.u64()
	cp.nLoads = int(d.i64())
	cp.nStores = int(d.i64())
	cp.memPortsUsed = int(d.i64())
	for i := range cp.unitUsed {
		cp.unitUsed[i] = int(d.i64())
	}
	cp.divBusyUntil[0] = d.u64()
	cp.divBusyUntil[1] = d.u64()
	cp.oldestUnexecStore = d.u64()
	cp.streamDigest = d.u64()
	for s := 0; s < int(coverage.NumStructures); s++ {
		cp.ibrC[s].EffBits = d.u64()
		cp.ibrC[s].Uses = d.u64()
	}
	cp.crash = d.crash()
	cp.timedOut = d.boolean()
	cp.finished = d.boolean()
	if d.err != nil {
		return release()
	}
	return cp
}

// DecodeGoldenArtifacts parses HXGA bytes back into a bundle. The
// program must be the exact instruction slice the bundle was computed
// for (the cache key guarantees this) — µop instruction pointers are
// rebound to it. On error every pooled resource acquired during the
// partial decode is released.
func DecodeGoldenArtifacts(data []byte, prog []isa.Inst) (*GoldenArtifacts, error) {
	d := &gaDec{data: data}
	if d.u32() != goldenMagic {
		return nil, fmt.Errorf("uarch: golden codec: bad magic")
	}
	if v := d.u32(); v != goldenVersion {
		return nil, fmt.Errorf("uarch: golden codec: unsupported version %d", v)
	}
	cfgJSON := d.bytes()
	var cfg Config
	if len(cfgJSON) > 0 {
		if err := json.Unmarshal(cfgJSON, &cfg); err != nil {
			return nil, fmt.Errorf("uarch: golden codec config: %w", err)
		}
	}
	cfg = scrubGoldenConfig(cfg) // belt-and-braces; the encoder scrubbed already

	ga := &GoldenArtifacts{}
	fail := func() (*GoldenArtifacts, error) {
		ga.Release()
		return nil, d.err
	}
	ga.Result = d.result()
	if d.err != nil {
		return fail()
	}

	if d.u8() == 1 {
		interval := d.u64()
		npts := d.length()
		if d.err != nil {
			return fail()
		}
		t := GetDeltaTrajectory(interval)
		t.Interval = interval // preserve 0 exactly as recorded (Get defaults it)
		ga.Trajectory = t
		for i := 0; i < npts && d.err == nil; i++ {
			t.Points = append(t.Points, DeltaPoint{
				Cycle:   d.u64(),
				Instret: d.u64(),
				Stream:  d.u64(),
				State:   d.u64(),
			})
		}
		if d.err != nil {
			return fail()
		}
	}

	ncks := d.length()
	for i := 0; i < ncks && d.err == nil; i++ {
		cycle := d.u64()
		cp := d.core(prog, cfg)
		if d.err != nil {
			return fail()
		}
		liveCheckpoints.Add(1)
		ga.Checkpoints = append(ga.Checkpoints, &Checkpoint{cycle: cycle, core: cp})
	}
	if d.err != nil {
		return fail()
	}
	if d.off != len(data) {
		d.fail("%d trailing bytes", len(data)-d.off)
		return fail()
	}
	return ga, nil
}
