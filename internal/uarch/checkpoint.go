package uarch

import (
	"sync/atomic"

	"harpocrates/internal/ace"
	"harpocrates/internal/arch"
)

// Checkpoint is an immutable deep-copy snapshot of all simulator state
// at the start of one cycle: physical register files and free lists,
// rename maps, ROB/IQ/LSQ contents, cache SRAM and tags, L2 tags, branch
// predictor, cycle/sequence counters, statistics, ACE trackers and the
// architectural memory image. Fault-injection campaigns take checkpoints
// during the instrumented golden run and resume each faulty run from the
// nearest checkpoint preceding its injection cycle, skipping the
// bit-identical golden prefix.
//
// A checkpoint is reusable: restoring copies it again, so any number of
// runs (including concurrent ones) can resume from the same snapshot.
// Interval recorders and trace sinks are golden-run instrumentation and
// are not captured.
type Checkpoint struct {
	cycle uint64
	core  *Core
}

// Cycle returns the cycle the snapshot was taken at (start-of-cycle
// state: a restored run re-enters this cycle, so an OnCycle hook fires
// for it again).
func (ck *Checkpoint) Cycle() uint64 { return ck.cycle }

// liveCheckpoints counts Checkpoint minus Release — the pool-hygiene
// leak detector used by tests.
var liveCheckpoints atomic.Int64

// Checkpoint snapshots the core's current state. It is safe to call from
// an OnCycle hook, which is invoked before the cycle's pipeline stages —
// the snapshot then captures start-of-cycle state for that cycle. The
// snapshot's storage comes from the core pool; hand it back with Release
// when the checkpoint is no longer needed.
func (c *Core) Checkpoint() *Checkpoint {
	liveCheckpoints.Add(1)
	// Force the memory digest live before copying: the snapshot inherits
	// it, so every run resumed from this checkpoint computes its output
	// signature (and delta state hash) incrementally instead of scanning
	// the whole image — the scan happens once per checkpointed golden
	// run, not once per faulty run.
	c.mem.Digest()
	cp := getPooledCore()
	cp.copyFrom(c)
	return &Checkpoint{cycle: c.cycle, core: cp}
}

// Release returns the checkpoint's storage (a deep core copy holding
// megabytes of PRF, ROB, cache and memory state) to the core pool. The
// checkpoint must not be restored from afterwards; Release is idempotent
// and nil-safe. Callers must ensure no concurrent RestoreFrom is still
// reading the snapshot.
func (ck *Checkpoint) Release() {
	if ck == nil || ck.core == nil {
		return
	}
	liveCheckpoints.Add(-1)
	putPooledCore(ck.core)
	ck.core = nil
}

// LiveCheckpoints returns the number of checkpoints taken and not yet
// released (leak-test hook).
func LiveCheckpoints() int64 { return liveCheckpoints.Load() }

// RestoreFrom loads ck's state into c (another deep copy, leaving the
// checkpoint reusable) and applies the run-specific config overrides:
// the OnCycle injection hook, the sparse event schedule and skip knob,
// the functional-unit hooks and window, the watchdog limit (when
// non-zero) and the trace sink. Structural parameters always come from
// the checkpoint.
func (c *Core) RestoreFrom(ck *Checkpoint, cfg Config) {
	c.copyFrom(ck.core)
	c.cfg.OnCycle = cfg.OnCycle
	c.cfg.Events = cfg.Events
	c.cfg.NoCycleSkip = cfg.NoCycleSkip
	c.cfg.FU = cfg.FU
	c.cfg.FUOutside = cfg.FUOutside
	c.cfg.FUWindow = cfg.FUWindow
	if cfg.MaxCycles != 0 {
		c.cfg.MaxCycles = cfg.MaxCycles
	}
	c.cfg.Trace = cfg.Trace
	// Delta resimulation: a restored run never extends the golden
	// trajectory (the checkpoint's config may still point at it), but it
	// may compare against one. The stream digest travels with the
	// checkpoint, so a resumed run's digest matches what the golden run's
	// was at this cycle.
	c.cfg.DeltaRecord = nil
	c.cfg.DeltaCompare = cfg.DeltaCompare
	c.cfg.DeltaQuiesce = cfg.DeltaQuiesce
	c.armDelta()
}

// RunFromCheckpoint resumes simulation from ck under the run-specific
// overrides of cfg (see Core.RestoreFrom) on a pooled core and returns
// the completed result. Safe for concurrent use with a shared
// checkpoint.
func RunFromCheckpoint(ck *Checkpoint, cfg Config) *Result {
	c := getPooledCore()
	c.RestoreFrom(ck, cfg)
	r := c.Run()
	putPooledCore(c)
	return r
}

// copyFrom makes c a deep copy of src, reusing c's existing allocations
// where shapes match (both the checkpoint-restore and core-pool hot
// paths depend on this to avoid re-allocating megabytes per run).
func (c *Core) copyFrom(src *Core) {
	c.cfg = src.cfg
	c.prog = src.prog
	c.mem = src.mem.CloneInto(c.mem)

	var tr *ace.CacheTracker
	if src.cache.tracker != nil {
		var old *ace.CacheTracker
		if c.cache != nil {
			old = c.cache.tracker
		}
		tr = src.cache.tracker.CloneInto(old)
	}
	c.cache = copyDCacheInto(c.cache, src.cache, c.mem, tr)

	if c.bp != nil && len(c.bp.table) == len(src.bp.table) {
		c.bp.history = src.bp.history
		c.bp.mask = src.bp.mask
		copy(c.bp.table, src.bp.table)
	} else {
		c.bp = &gshare{history: src.bp.history, mask: src.bp.mask,
			table: append([]uint8(nil), src.bp.table...)}
	}

	if src.irf != nil {
		c.irf = src.irf.CloneInto(c.irf)
	} else {
		c.irf = nil
	}
	if src.fprf != nil {
		c.fprf = src.fprf.CloneInto(c.fprf)
	} else {
		c.fprf = nil
	}
	c.recIRF, c.recFPRF = nil, nil
	c.ibrC = src.ibrC

	c.intPRF = grow(c.intPRF, len(src.intPRF))
	copy(c.intPRF, src.intPRF)
	c.intReady = grow(c.intReady, len(src.intReady))
	copy(c.intReady, src.intReady)
	c.intFree = append(c.intFree[:0], src.intFree...)
	c.fpPRF = grow(c.fpPRF, len(src.fpPRF))
	copy(c.fpPRF, src.fpPRF)
	c.fpReady = grow(c.fpReady, len(src.fpReady))
	copy(c.fpReady, src.fpReady)
	c.fpFree = append(c.fpFree[:0], src.fpFree...)
	c.flagPRF = grow(c.flagPRF, len(src.flagPRF))
	copy(c.flagPRF, src.flagPRF)
	c.flagRdy = grow(c.flagRdy, len(src.flagRdy))
	copy(c.flagRdy, src.flagRdy)
	c.flagFree = append(c.flagFree[:0], src.flagFree...)
	c.rat = src.rat

	c.rob = copyUopsInto(c.rob, src.rob)
	c.robHead = src.robHead
	c.robCnt = src.robCnt
	c.iq = append(c.iq[:0], src.iq...)
	c.sq = append(c.sq[:0], src.sq...)
	c.inflight = append(c.inflight[:0], src.inflight...)
	c.fq = append(c.fq[:0], src.fq...)
	c.fetchPC = src.fetchPC
	c.fetchStallUntil = src.fetchStallUntil
	c.decArmed = src.decArmed
	c.decBit = src.decBit
	c.decInst = src.decInst
	// A mutated µop's inst points at its core's decInst; rebind it to the
	// copy's. (Checkpoints are only taken on golden runs, which never
	// carry mutated µops, but pooled-core copies are cheap to keep exact.)
	for i := range c.rob {
		if c.rob[i].mutated {
			c.rob[i].inst = &c.decInst
		}
	}

	c.cycle = src.cycle
	// Run-loop scratch: wbReadyAt is only a lower bound on the next
	// writeback, so resetting it to 0 is always safe (first writeback scan
	// re-derives it); carrying a stale-high value from a previous pooled
	// run would wrongly suppress writeback. skipped is per-run telemetry.
	c.progressed = false
	c.wbReadyAt = 0
	c.skipped = 0
	// The committed-stream digest is real state and travels with the
	// copy; the arming fields are re-derived (RestoreFrom calls armDelta
	// after applying its overrides — a bare copy never records/compares).
	c.streamDigest = src.streamDigest
	c.deltaHashOn = false
	c.deltaNextRec = 0
	c.deltaCmpIdx = 0
	c.deltaCmpFrom = 0
	c.reconverged = false
	c.seq = src.seq
	c.instret = src.instret
	c.nLoads, c.nStores = src.nLoads, src.nStores
	c.memPortsUsed = src.memPortsUsed
	c.unitUsed = src.unitUsed
	c.divBusyUntil = src.divBusyUntil
	c.oldestUnexecStore = src.oldestUnexecStore

	// Struct assignment carries the nondeterminism counter; the memory
	// bus and FU hooks are rebound at every execUop.
	c.execState = src.execState
	c.execState.Mem = nil
	c.execState.FU = nil
	c.bus = execBus{c: c}

	c.branches, c.mispredicts = src.branches, src.mispredicts
	c.flushes = src.flushes
	c.crash = src.crash
	c.timedOut = src.timedOut
	c.finished = src.finished
	c.scratchSrc = c.scratchSrc[:0]
	c.scratchDst = c.scratchDst[:0]
}

// copyUopsInto deep-copies ROB entries, retaining dst's per-µop slice
// capacity.
func copyUopsInto(dst, src []uop) []uop {
	dst = grow(dst, len(src))
	for i := range src {
		d, s := &dst[i], &src[i]
		srcs, dsts, writes, events, ibr := d.srcs, d.dsts, d.writes, d.events, d.ibr
		*d = *s
		d.srcs = append(srcs[:0], s.srcs...)
		d.dsts = append(dsts[:0], s.dsts...)
		d.writes = append(writes[:0], s.writes...)
		d.events = append(events[:0], s.events...)
		d.ibr = append(ibr[:0], s.ibr...)
	}
	return dst
}

// copyDCacheInto deep-copies the L1D model, rebinding it to the copy's
// backing memory and tracker.
func copyDCacheInto(dst, src *dcache, backing *arch.Memory, tracker *ace.CacheTracker) *dcache {
	if dst == nil || dst.cfg != src.cfg || len(dst.lines) != len(src.lines) {
		dst = &dcache{
			cfg:     src.cfg,
			numSets: src.numSets,
			lines:   make([]cacheLine, len(src.lines)),
			data:    make([]byte, len(src.data)),
		}
	}
	dst.numSets = src.numSets
	dst.backing = backing
	dst.tracker = tracker
	dst.rec = nil
	copy(dst.data, src.data)
	for i := range src.lines {
		l := src.lines[i]
		l.data = dst.data[i*src.cfg.LineBytes : (i+1)*src.cfg.LineBytes]
		dst.lines[i] = l
	}
	dst.l2 = copyL2Into(dst.l2, src.l2)
	dst.l2HitLat = src.l2HitLat
	dst.memLat = src.memLat
	dst.prefetch = src.prefetch
	dst.hits, dst.misses, dst.writebacks = src.hits, src.misses, src.writebacks
	return dst
}

func copyL2Into(dst, src *l2tags) *l2tags {
	if src == nil {
		return nil
	}
	if dst == nil || dst.numSets != src.numSets || dst.ways != src.ways {
		dst = &l2tags{
			numSets:   src.numSets,
			ways:      src.ways,
			lineBytes: src.lineBytes,
			valid:     make([]bool, len(src.valid)),
			tag:       make([]uint64, len(src.tag)),
			lastUse:   make([]uint64, len(src.lastUse)),
		}
	}
	dst.lineBytes = src.lineBytes
	copy(dst.valid, src.valid)
	copy(dst.tag, src.tag)
	copy(dst.lastUse, src.lastUse)
	dst.hits, dst.misses, dst.prefetches = src.hits, src.misses, src.prefetches
	return dst
}
