package dist

import (
	"math/rand/v2"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"harpocrates/internal/core"
	"harpocrates/internal/coverage"
	"harpocrates/internal/gen"
	"harpocrates/internal/inject"
	"harpocrates/internal/obs"
	"harpocrates/internal/prog"
	"harpocrates/internal/uarch"
)

// testCampaign builds a small deterministic campaign plus the program's
// serializable form (what a coordinator ships to workers).
func testCampaign(t *testing.T, n int) (*inject.Campaign, *prog.Program) {
	t.Helper()
	cfg := gen.DefaultConfig()
	cfg.NumInstrs = 300
	rng := rand.New(rand.NewPCG(99, 100))
	p := gen.Materialize(gen.NewRandom(&cfg, rng), &cfg)
	c := &inject.Campaign{
		Prog:   p.Insts,
		Init:   p.InitFunc(),
		Target: coverage.IRF,
		Type:   inject.Transient,
		N:      n,
		Seed:   7,
		Cfg:    uarch.DefaultConfig(),
	}
	return c, p
}

// startWorkers spins up n in-process workers and returns their URLs.
func startWorkers(t *testing.T, n int) []string {
	t.Helper()
	urls := make([]string, n)
	for i := range urls {
		srv := httptest.NewServer(NewServer(nil).Handler())
		t.Cleanup(srv.Close)
		urls[i] = srv.URL
	}
	return urls
}

func fastOptions() Options {
	return Options{
		Timeout:     30 * time.Second,
		Retries:     2,
		BackoffBase: time.Millisecond,
		BackoffMax:  5 * time.Millisecond,
	}
}

// The acceptance property: a campaign's merged distributed result is
// bit-identical to the in-process run, for any worker count.
func TestDistributedCampaignBitIdentical(t *testing.T) {
	c, p := testCampaign(t, 40)
	local, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 3} {
		pool := New(startWorkers(t, workers), fastOptions())
		if got := pool.Probe(); got != workers {
			t.Fatalf("%d workers: %d healthy", workers, got)
		}
		st, err := pool.RunCampaign(c, p)
		if err != nil {
			t.Fatal(err)
		}
		if !st.Equal(local) {
			t.Fatalf("%d workers: distributed %+v != local %+v", workers, st, local)
		}
	}
}

// A worker that fails transiently (here: its first two shard requests
// return 500) must be retried with backoff, not evicted, and the final
// result must still be exact.
func TestRetryThenSuccess(t *testing.T) {
	c, p := testCampaign(t, 24)
	local, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	inner := NewServer(nil).Handler()
	var failures atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != PathHealthz && failures.Add(1) <= 2 {
			http.Error(w, "synthetic transient failure", http.StatusInternalServerError)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	defer srv.Close()

	reg := obs.NewRegistry()
	opts := fastOptions()
	opts.Retries = 3
	opts.Obs = obs.New(reg, nil)
	pool := New([]string{srv.URL}, opts)
	st, err := pool.RunCampaign(c, p)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Equal(local) {
		t.Fatalf("distributed %+v != local %+v", st, local)
	}
	if got := reg.Counter("dist.rpc.retries").Load(); got < 2 {
		t.Fatalf("retries counter = %d, want >= 2", got)
	}
	if pool.Alive() != 1 {
		t.Fatal("transiently failing worker was evicted")
	}
}

// A request exceeding the per-request timeout counts as a failure and is
// retried; the retry (no artificial delay the second time) succeeds.
func TestTimeoutRetry(t *testing.T) {
	c, p := testCampaign(t, 8)
	local, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	inner := NewServer(nil).Handler()
	var first atomic.Bool
	first.Store(true)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != PathHealthz && first.CompareAndSwap(true, false) {
			time.Sleep(2 * time.Second) // well past the pool timeout
		}
		inner.ServeHTTP(w, r)
	}))
	defer srv.Close()

	reg := obs.NewRegistry()
	opts := fastOptions()
	opts.Timeout = 200 * time.Millisecond
	opts.Obs = obs.New(reg, nil)
	pool := New([]string{srv.URL}, opts)
	st, err := pool.RunCampaign(c, p)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Equal(local) {
		t.Fatalf("distributed %+v != local %+v", st, local)
	}
	if reg.Counter("dist.rpc.retries").Load() == 0 {
		t.Fatal("timeout did not trigger a retry")
	}
}

// A permanently failing worker is evicted after its retries are spent
// and its shard is re-queued onto the healthy worker; the merged result
// is still exact.
func TestEvictionAndRequeue(t *testing.T) {
	c, p := testCampaign(t, 24)
	local, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	good := startWorkers(t, 1)[0]
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == PathHealthz {
			writeJSON(w, HealthzResponse{OK: true})
			return
		}
		http.Error(w, "synthetic permanent failure", http.StatusInternalServerError)
	}))
	defer dead.Close()

	reg := obs.NewRegistry()
	opts := fastOptions()
	opts.Obs = obs.New(reg, nil)
	pool := New([]string{good, dead.URL}, opts)
	if pool.Probe() != 2 {
		t.Fatal("both workers should pass healthz")
	}
	st, err := pool.RunCampaign(c, p)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Equal(local) {
		t.Fatalf("distributed %+v != local %+v", st, local)
	}
	if pool.Alive() != 1 {
		t.Fatalf("alive = %d, want 1 (dead worker evicted)", pool.Alive())
	}
	if reg.Counter("dist.worker.evictions").Load() != 1 {
		t.Fatalf("evictions = %d, want 1", reg.Counter("dist.worker.evictions").Load())
	}
	if reg.Counter("dist.shard.requeues").Load() == 0 {
		t.Fatal("dead worker's shard was not re-queued")
	}
}

// A worker dying mid-campaign (serves some shards, then the connection
// drops) must not lose its in-flight shard: the survivor picks it up.
func TestWorkerKilledMidCampaign(t *testing.T) {
	c, p := testCampaign(t, 32)
	local, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	good := startWorkers(t, 1)[0]
	inner := NewServer(nil).Handler()
	var served atomic.Int64
	var flaky *httptest.Server
	flaky = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != PathHealthz && served.Add(1) > 1 {
			// Simulate a crash: drop the connection without a response.
			flaky.CloseClientConnections()
			return
		}
		inner.ServeHTTP(w, r)
	}))
	defer flaky.Close()

	reg := obs.NewRegistry()
	opts := fastOptions()
	opts.Retries = 1
	opts.Obs = obs.New(reg, nil)
	pool := New([]string{good, flaky.URL}, opts)
	st, err := pool.RunCampaign(c, p)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Equal(local) {
		t.Fatalf("distributed %+v != local %+v", st, local)
	}
	if pool.Alive() != 1 {
		t.Fatalf("alive = %d, want 1 (killed worker evicted)", pool.Alive())
	}
	if reg.Counter("dist.shard.requeues").Load() == 0 {
		t.Fatal("killed worker's shard was not re-queued")
	}
}

// With no reachable workers the pool degrades to the in-process path.
func TestZeroWorkersFallback(t *testing.T) {
	c, p := testCampaign(t, 8)
	local, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	for name, pool := range map[string]*Pool{
		"no workers":   New(nil, fastOptions()),
		"unreachable":  New([]string{"http://127.0.0.1:1"}, fastOptions()),
		"empty string": New([]string{"", " "}, fastOptions()),
	} {
		pool.Probe()
		if pool.Alive() != 0 {
			t.Fatalf("%s: alive = %d, want 0", name, pool.Alive())
		}
		st, err := pool.RunCampaign(c, p)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !st.Equal(local) {
			t.Fatalf("%s: fallback %+v != local %+v", name, st, local)
		}
	}
}

// The distributed evaluator must reproduce the local refinement
// trajectory exactly: same best fitness, same best genotype, same
// per-iteration history.
func TestEvalDistributedBitIdentical(t *testing.T) {
	baseOptions := func() core.Options {
		o := core.Options{Structure: coverage.IntAdder, Seed: 42}
		o.Gen = gen.DefaultConfig()
		o.Gen.NumInstrs = 150
		o.PopSize = 8
		o.TopK = 2
		o.MutantsPerParent = 3
		o.Iterations = 3
		return o
	}
	local, err := core.Run(baseOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 3} {
		pool := New(startWorkers(t, workers), fastOptions())
		o := baseOptions()
		o.Evaluator = pool.Evaluator()
		res, err := core.Run(o)
		if err != nil {
			t.Fatal(err)
		}
		if res.Best.Fitness != local.Best.Fitness {
			t.Fatalf("%d workers: best fitness %v != %v", workers, res.Best.Fitness, local.Best.Fitness)
		}
		if res.Best.G.Hash() != local.Best.G.Hash() {
			t.Fatalf("%d workers: best genotype %016x != %016x",
				workers, res.Best.G.Hash(), local.Best.G.Hash())
		}
		for i := range local.History.Best {
			if res.History.Best[i] != local.History.Best[i] {
				t.Fatalf("%d workers: trajectory diverged at iteration %d: %v != %v",
					workers, i, res.History.Best[i], local.History.Best[i])
			}
		}
	}
}

// The evaluator degrades to in-process grading when the fleet is gone.
func TestEvalZeroWorkersFallback(t *testing.T) {
	o := core.Options{Structure: coverage.IntAdder, Seed: 42}
	o.Gen = gen.DefaultConfig()
	o.Gen.NumInstrs = 150
	o.PopSize = 6
	o.TopK = 2
	o.MutantsPerParent = 2
	o.Iterations = 2
	local, err := core.Run(o)
	if err != nil {
		t.Fatal(err)
	}
	pool := New([]string{"http://127.0.0.1:1"}, fastOptions())
	pool.Probe()
	o.Evaluator = pool.Evaluator()
	res, err := core.Run(o)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Fitness != local.Best.Fitness || res.Best.G.Hash() != local.Best.G.Hash() {
		t.Fatal("in-process fallback diverged from the local run")
	}
}

// Unconfigured evaluator must refuse cleanly rather than grade garbage.
func TestEvaluatorRequiresConfigure(t *testing.T) {
	pool := New(startWorkers(t, 1), fastOptions())
	e := pool.Evaluator()
	gs, _ := testGenotypes(t, 1)
	if _, err := e.EvaluateBatch(gs); err == nil {
		t.Fatal("unconfigured evaluator graded a batch")
	}
}

// Worker HTTP error handling: wrong method, garbage body, bad range.
func TestWorkerRejectsBadRequests(t *testing.T) {
	srv := httptest.NewServer(NewServer(nil).Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + PathInject)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET inject: status %d, want 405", resp.StatusCode)
	}
	resp, err = http.Post(srv.URL+PathEval, "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty eval: status %d, want 400", resp.StatusCode)
	}
}

// Delta-termination knob plumbing: the wire protocol must carry
// NoDeltaTermination and DeltaInterval to workers, the distributed
// outcome must be bit-identical with the knob in either position and for
// any worker count, and the worker-side delta counters must prove the
// optimization actually ran (or was actually disabled).
func TestDistributedDeltaTermination(t *testing.T) {
	c, p := testCampaign(t, 40)
	c.DeltaInterval = 64
	local, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct {
		name    string
		noDelta bool
	}{{"delta-on", false}, {"delta-off", true}} {
		c.NoDeltaTermination = tc.noDelta
		for _, workers := range []int{1, 3} {
			regs := make([]*obs.Registry, workers)
			urls := make([]string, workers)
			for i := range urls {
				regs[i] = obs.NewRegistry()
				srv := httptest.NewServer(NewServer(obs.New(regs[i], nil)).Handler())
				t.Cleanup(srv.Close)
				urls[i] = srv.URL
			}
			pool := New(urls, fastOptions())
			st, err := pool.RunCampaign(c, p)
			if err != nil {
				t.Fatal(err)
			}
			if !st.Equal(local) {
				t.Fatalf("%s/%d workers: distributed %+v != local %+v", tc.name, workers, st, local)
			}
			var conv, div int64
			for _, reg := range regs {
				conv += reg.Counter("inject.delta.converged").Load()
				div += reg.Counter("inject.delta.diverged").Load()
			}
			if tc.noDelta && conv+div != 0 {
				t.Fatalf("%d workers: NoDeltaTermination=true but workers compared trajectories (converged=%d diverged=%d)",
					workers, conv, div)
			}
			if !tc.noDelta && conv == 0 {
				t.Fatalf("%d workers: delta on but no worker run reconverged (diverged=%d)", workers, div)
			}
		}
	}
	c.NoDeltaTermination = false
}

// TestDistributedTrapAndBurstBitIdentical: the trap outcome channel and
// the multi-bit-upset parameter must survive the wire protocol — a
// distributed decoder campaign (trap-heavy) and a distributed burst
// campaign both merge to statistics bit-identical to the local run.
func TestDistributedTrapAndBurstBitIdentical(t *testing.T) {
	for _, tc := range []struct {
		name  string
		tweak func(c *inject.Campaign)
	}{
		{"decoder-trap", func(c *inject.Campaign) { c.Target = coverage.Decoder }},
		{"irf-burst", func(c *inject.Campaign) { c.BurstLen = 3 }},
	} {
		c, p := testCampaign(t, 32)
		tc.tweak(c)
		local, err := c.Run()
		if err != nil {
			t.Fatal(err)
		}
		if tc.name == "decoder-trap" && local.Trap == 0 {
			t.Fatalf("%s: no traps locally; the wire assertion would be vacuous: %+v", tc.name, local)
		}
		pool := New(startWorkers(t, 2), fastOptions())
		st, err := pool.RunCampaign(c, p)
		if err != nil {
			t.Fatal(err)
		}
		if !st.Equal(local) {
			t.Fatalf("%s: distributed %+v != local %+v", tc.name, st, local)
		}
	}
}
