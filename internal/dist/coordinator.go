package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"harpocrates/internal/core"
	"harpocrates/internal/coverage"
	"harpocrates/internal/gen"
	"harpocrates/internal/inject"
	"harpocrates/internal/obs"
	"harpocrates/internal/prog"
	"harpocrates/internal/uarch"
)

// Options tunes the coordinator's view of the unreliable network.
type Options struct {
	// Timeout bounds each RPC, golden run and shard simulation included
	// (default 5 minutes).
	Timeout time.Duration
	// Retries is how many times a failed RPC is re-attempted on the
	// same worker before the worker is evicted (default 2).
	Retries int
	// BackoffBase is the first retry delay; each further retry doubles
	// it, jittered ±50%, capped at BackoffMax (defaults 100ms / 5s).
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// ShardsPerWorker is the shard multiplier: a campaign or eval batch
	// is cut into alive-workers × ShardsPerWorker contiguous shards
	// (default 4), so a dead worker forfeits only a fraction of the
	// work and faster workers absorb the remainder.
	ShardsPerWorker int
	// Obs, if set, receives RPC counters (dist.rpc.*), retry/eviction/
	// requeue/fallback counters and per-worker latency histograms.
	Obs *obs.Observer
}

func (o Options) withDefaults() Options {
	if o.Timeout <= 0 {
		o.Timeout = 5 * time.Minute
	}
	if o.Retries < 0 {
		o.Retries = 0
	} else if o.Retries == 0 {
		o.Retries = 2
	}
	if o.BackoffBase <= 0 {
		o.BackoffBase = 100 * time.Millisecond
	}
	if o.BackoffMax <= 0 {
		o.BackoffMax = 5 * time.Second
	}
	if o.ShardsPerWorker <= 0 {
		o.ShardsPerWorker = 4
	}
	return o
}

// workerHandle tracks one worker's address and health.
type workerHandle struct {
	url  string // normalized base URL, no trailing slash
	name string // host:port, for metrics

	mu    sync.Mutex
	alive bool
}

func (w *workerHandle) isAlive() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.alive
}

func (w *workerHandle) setAlive(v bool) {
	w.mu.Lock()
	w.alive = v
	w.mu.Unlock()
}

// Pool is the coordinator side of the protocol: it shards
// fault-injection campaigns (RunCampaign) and evaluation batches
// (Evaluator) across a set of workers, merges partial results
// deterministically by shard index, and degrades gracefully — failed
// RPCs are retried with jittered exponential backoff, persistently
// failing workers are evicted and their shards re-queued, and when no
// worker is left the remaining shards run in process. Eviction is
// sticky for the Pool's lifetime (a long refinement run does not keep
// re-probing a dead machine); build a fresh Pool to re-admit workers.
type Pool struct {
	opts    Options
	ob      *obs.Observer
	client  *http.Client
	workers []*workerHandle
	// rr rotates single-shard push dispatch (PostInject/PostEval)
	// across live workers.
	rr atomic.Uint64
}

// New builds a pool over worker base URLs ("http://host:port"; a bare
// "host:port" gets the scheme prefixed). All workers start out assumed
// alive; Probe checks them eagerly.
func New(urls []string, opts Options) *Pool {
	opts = opts.withDefaults()
	p := &Pool{
		opts:   opts,
		ob:     opts.Obs,
		client: &http.Client{},
	}
	for _, u := range urls {
		u = strings.TrimSpace(u)
		if u == "" {
			continue
		}
		if !strings.Contains(u, "://") {
			u = "http://" + u
		}
		u = strings.TrimRight(u, "/")
		name := u
		if parsed, err := url.Parse(u); err == nil && parsed.Host != "" {
			name = parsed.Host
		}
		p.workers = append(p.workers, &workerHandle{url: u, name: name, alive: true})
	}
	return p
}

// Size returns the number of configured workers.
func (p *Pool) Size() int { return len(p.workers) }

// Alive returns the number of workers not yet evicted.
func (p *Pool) Alive() int {
	n := 0
	for _, w := range p.workers {
		if w.isAlive() {
			n++
		}
	}
	return n
}

// Probe health-checks every non-evicted worker, evicting unreachable
// ones, and returns the number alive.
func (p *Pool) Probe() int {
	var wg sync.WaitGroup
	for _, w := range p.workers {
		if !w.isAlive() {
			continue
		}
		wg.Add(1)
		go func(w *workerHandle) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), min(p.opts.Timeout, 5*time.Second))
			defer cancel()
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, w.url+PathHealthz, nil)
			if err != nil {
				p.evict(w, err)
				return
			}
			p.ob.Counter("dist.rpc.healthz").Inc()
			resp, err := p.client.Do(req)
			if err != nil {
				p.evict(w, err)
				return
			}
			io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				p.evict(w, fmt.Errorf("healthz status %s", resp.Status))
			}
		}(w)
	}
	wg.Wait()
	return p.Alive()
}

func (p *Pool) liveWorkers() []*workerHandle {
	var out []*workerHandle
	for _, w := range p.workers {
		if w.isAlive() {
			out = append(out, w)
		}
	}
	return out
}

func (p *Pool) evict(w *workerHandle, err error) {
	if !w.isAlive() {
		return
	}
	w.setAlive(false)
	p.ob.Counter("dist.worker.evictions").Inc()
	p.ob.Event("worker_evicted", obs.Fields{"worker": w.name, "error": err.Error()})
}

// post sends one JSON request to a worker with the per-request timeout
// and decodes the JSON response. Any transport error, timeout or
// non-200 status is returned as a failure for the retry layer.
func (p *Pool) post(w *workerHandle, path string, reqBody, respBody any) error {
	payload, err := json.Marshal(reqBody)
	if err != nil {
		return fmt.Errorf("dist: marshal request: %w", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), p.opts.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.url+path, bytes.NewReader(payload))
	if err != nil {
		return fmt.Errorf("dist: build request: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	t0 := time.Now()
	resp, err := p.client.Do(req)
	p.ob.Histogram("dist.worker." + w.name + ".ns").ObserveDuration(time.Since(t0))
	if err != nil {
		return fmt.Errorf("dist: %s%s: %w", w.url, path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("dist: %s%s: %s: %s", w.url, path, resp.Status,
			strings.TrimSpace(string(msg)))
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, maxRequestBytes)).Decode(respBody); err != nil {
		return fmt.Errorf("dist: %s%s: parse response: %w", w.url, path, err)
	}
	return nil
}

// withRetries attempts one shard RPC up to 1+Retries times with
// jittered exponential backoff between attempts.
func (p *Pool) withRetries(w *workerHandle, attempt func() error) error {
	var err error
	for try := 0; try <= p.opts.Retries; try++ {
		if try > 0 {
			p.ob.Counter("dist.rpc.retries").Inc()
			time.Sleep(p.backoff(try))
		}
		if err = attempt(); err == nil {
			return nil
		}
		p.ob.Counter("dist.rpc.failures").Inc()
	}
	return err
}

// backoff returns the delay before retry attempt `try` (1-based):
// BackoffBase·2^(try-1), jittered uniformly in [50%, 150%), capped at
// BackoffMax. The jitter decorrelates a fleet of coordinators
// hammering one recovering worker; it cannot affect campaign results.
func (p *Pool) backoff(try int) time.Duration {
	d := p.opts.BackoffBase << uint(try-1)
	if d > p.opts.BackoffMax || d <= 0 {
		d = p.opts.BackoffMax
	}
	half := d / 2
	if half > 0 {
		d = half + time.Duration(rand.Uint64N(uint64(2*half)))
	}
	if d > p.opts.BackoffMax {
		d = p.opts.BackoffMax
	}
	return d
}

// runShards drives n shards to completion: live workers pull shards
// from a shared queue, a shard whose worker fails permanently (after
// per-worker retries) is re-queued for the surviving workers, and any
// shards left when every worker is gone run in process via local. Shard
// results are written by index, so completion order never affects the
// merged outcome.
func (p *Pool) runShards(n int, remote func(w *workerHandle, shard int) error, local func(shard int) error) error {
	if n <= 0 {
		return nil
	}
	live := p.liveWorkers()
	if len(live) == 0 {
		p.ob.Counter("dist.fallback.local").Add(int64(n))
		for i := 0; i < n; i++ {
			if err := local(i); err != nil {
				return err
			}
		}
		return nil
	}

	pending := make(chan int, n)
	for i := 0; i < n; i++ {
		pending <- i
	}
	var remaining atomic.Int64
	remaining.Store(int64(n))
	quit := make(chan struct{})
	var quitOnce sync.Once

	var wg sync.WaitGroup
	for _, w := range live {
		wg.Add(1)
		go func(w *workerHandle) {
			defer wg.Done()
			for {
				select {
				case <-quit:
					return
				case shard := <-pending:
					err := p.withRetries(w, func() error { return remote(w, shard) })
					if err != nil {
						// The worker is not answering (or answering
						// garbage): evict it and hand its shard to the
						// survivors.
						p.evict(w, err)
						p.ob.Counter("dist.shard.requeues").Inc()
						pending <- shard
						return
					}
					if remaining.Add(-1) == 0 {
						quitOnce.Do(func() { close(quit) })
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()

	// Every worker finished or was evicted. Whatever shards remain are
	// sitting in the buffered queue; run them in process so the
	// campaign completes even with the whole fleet gone.
	for remaining.Load() > 0 {
		select {
		case shard := <-pending:
			p.ob.Counter("dist.fallback.local").Inc()
			if err := local(shard); err != nil {
				return err
			}
			remaining.Add(-1)
		default:
			return fmt.Errorf("dist: internal: %d shards unaccounted for", remaining.Load())
		}
	}
	return nil
}

// shardBounds cuts [0, n) into k contiguous ranges of near-equal size.
func shardBounds(n, k int) [][2]int {
	if k > n {
		k = n
	}
	out := make([][2]int, 0, k)
	for i := 0; i < k; i++ {
		lo, hi := i*n/k, (i+1)*n/k
		if lo < hi {
			out = append(out, [2]int{lo, hi})
		}
	}
	return out
}

// shardCount picks the shard count for n work items.
func (p *Pool) shardCount(n int) int {
	k := p.Alive() * p.opts.ShardsPerWorker
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	return k
}

// RunCampaign executes a fault-injection campaign sharded across the
// pool and merges the partial statistics by shard index. For a fixed
// (seed, config) the result is bit-identical to c.Run() in process —
// regardless of worker count, shard sizes, failures, re-queues or
// fallbacks. The program p must be the campaign's test program (the
// wire form of c.Prog/c.Init); campaigns with a custom Init not
// derived from a serializable program cannot be distributed.
func (c *Pool) RunCampaign(camp *inject.Campaign, p *prog.Program) (*inject.Stats, error) {
	if camp.N <= 0 {
		return nil, fmt.Errorf("inject: campaign needs N > 0")
	}
	stop := c.ob.Phase("dist.coord.campaign")
	defer stop()
	if c.Alive() == 0 {
		c.ob.Counter("dist.fallback.local").Inc()
		return camp.Run()
	}
	progBytes, err := EncodeProgram(p)
	if err != nil {
		return nil, err
	}
	template := campaignRequest(camp, progBytes)
	bounds := shardBounds(camp.N, c.shardCount(camp.N))
	parts := make([]*inject.Stats, len(bounds))

	remote := func(w *workerHandle, shard int) error {
		req := template
		req.Lo, req.Hi = bounds[shard][0], bounds[shard][1]
		var resp InjectResponse
		c.ob.Counter("dist.rpc.inject").Inc()
		if err := c.post(w, PathInject, &req, &resp); err != nil {
			return err
		}
		if resp.Stats.N != req.Hi-req.Lo || len(resp.Stats.Outcomes) != resp.Stats.N {
			return fmt.Errorf("dist: %s: shard [%d,%d) returned %d outcomes",
				w.url, req.Lo, req.Hi, len(resp.Stats.Outcomes))
		}
		parts[shard] = &resp.Stats
		return nil
	}
	local := func(shard int) error {
		st, err := camp.RunRange(bounds[shard][0], bounds[shard][1])
		if err != nil {
			return err
		}
		parts[shard] = st
		return nil
	}
	if err := c.runShards(len(bounds), remote, local); err != nil {
		return nil, err
	}
	return inject.MergeStats(parts)
}

// poolEvaluator adapts the pool to core.Evaluator: evaluation batches
// are sharded across workers like campaign specs, with the same retry/
// evict/re-queue/fallback machinery, and results are reassembled in
// input order.
type poolEvaluator struct {
	p *Pool

	mu     sync.Mutex
	st     coverage.Structure
	gen    gen.Config
	core   uarch.Config
	metric coverage.Metric
	ready  bool
}

// Evaluator returns a core.Evaluator fanning evaluation batches out
// over the pool (set it as core.Options.Evaluator).
func (p *Pool) Evaluator() core.Evaluator { return &poolEvaluator{p: p} }

func (e *poolEvaluator) Configure(st coverage.Structure, gcfg gen.Config, ccfg uarch.Config) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.st = st
	e.gen = gcfg
	e.core = ccfg
	e.metric = coverage.MetricFor(st)
	e.ready = true
	return nil
}

func (e *poolEvaluator) EvaluateBatch(gs []*gen.Genotype) ([]core.EvalResult, error) {
	e.mu.Lock()
	if !e.ready {
		e.mu.Unlock()
		return nil, fmt.Errorf("dist: evaluator used before Configure")
	}
	st, gcfg, ccfg, metric := e.st, e.gen, e.core, e.metric
	e.mu.Unlock()
	if len(gs) == 0 {
		return nil, nil
	}

	stop := e.p.ob.Phase("dist.coord.eval")
	defer stop()
	results := make([]core.EvalResult, len(gs))
	if e.p.Alive() == 0 {
		e.p.ob.Counter("dist.fallback.local").Add(int64(len(gs)))
		for i, g := range gs {
			results[i] = core.GradeGenotype(g, &gcfg, ccfg, metric)
		}
		return results, nil
	}

	wire := EncodeGenotypes(gs)
	bounds := shardBounds(len(gs), e.p.shardCount(len(gs)))

	remote := func(w *workerHandle, shard int) error {
		lo, hi := bounds[shard][0], bounds[shard][1]
		req := EvalRequest{
			Structure: st.String(),
			Gen:       gcfg,
			Core:      ccfg,
			Genotypes: wire[lo:hi],
		}
		var resp EvalResponse
		e.p.ob.Counter("dist.rpc.eval").Inc()
		if err := e.p.post(w, PathEval, &req, &resp); err != nil {
			return err
		}
		if len(resp.Results) != hi-lo {
			return fmt.Errorf("dist: %s: eval shard [%d,%d) returned %d results",
				w.url, lo, hi, len(resp.Results))
		}
		for i, r := range resp.Results {
			results[lo+i] = core.EvalResult{Fitness: r.Fitness, Snapshot: r.Snapshot}
		}
		return nil
	}
	local := func(shard int) error {
		lo, hi := bounds[shard][0], bounds[shard][1]
		for i := lo; i < hi; i++ {
			results[i] = core.GradeGenotype(gs[i], &gcfg, ccfg, metric)
		}
		return nil
	}
	if err := e.p.runShards(len(bounds), remote, local); err != nil {
		return nil, err
	}
	return results, nil
}
