package dist

import (
	"encoding/json"
	"math/rand/v2"
	"reflect"
	"testing"

	"harpocrates/internal/coverage"
	"harpocrates/internal/gen"
	"harpocrates/internal/inject"
	"harpocrates/internal/uarch"
)

func testGenotypes(t *testing.T, n int) ([]*gen.Genotype, gen.Config) {
	t.Helper()
	cfg := gen.DefaultConfig()
	cfg.NumInstrs = 60
	rng := rand.New(rand.NewPCG(3, 4))
	gs := make([]*gen.Genotype, n)
	for i := range gs {
		gs[i] = gen.NewRandom(&cfg, rng)
	}
	return gs, cfg
}

func TestProgramWireRoundTrip(t *testing.T) {
	gs, cfg := testGenotypes(t, 1)
	p := gen.Materialize(gs[0], &cfg)
	wire, err := EncodeProgram(p)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeProgram(wire)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Insts) != len(p.Insts) {
		t.Fatalf("round trip lost instructions: %d != %d", len(back.Insts), len(p.Insts))
	}
	for i := range p.Insts {
		if back.Insts[i] != p.Insts[i] {
			t.Fatalf("instruction %d changed: %v != %v", i, back.Insts[i], p.Insts[i])
		}
	}
	if _, err := DecodeProgram([]byte("not a program")); err == nil {
		t.Fatal("garbage program accepted")
	}
}

func TestGenotypeWireRoundTrip(t *testing.T) {
	gs, _ := testGenotypes(t, 5)
	wire := EncodeGenotypes(gs)
	back, err := DecodeGenotypes(wire)
	if err != nil {
		t.Fatal(err)
	}
	for i := range gs {
		if back[i].Hash() != gs[i].Hash() {
			t.Fatalf("genotype %d hash %016x != %016x", i, back[i].Hash(), gs[i].Hash())
		}
	}
	if _, err := DecodeGenotypes([][]byte{{1, 2, 3}}); err == nil {
		t.Fatal("garbage genotype accepted")
	}
}

// The inject request must survive JSON intact: the core config's hook
// fields are deliberately excluded from the wire (workers rebuild them),
// but every scalar knob that affects timing must round-trip exactly.
func TestInjectRequestJSONRoundTrip(t *testing.T) {
	gs, cfg := testGenotypes(t, 1)
	p := gen.Materialize(gs[0], &cfg)
	progBytes, err := EncodeProgram(p)
	if err != nil {
		t.Fatal(err)
	}
	c := &inject.Campaign{
		Target:             coverage.IRF,
		Type:               inject.Transient,
		N:                  17,
		Seed:               99,
		IntermittentLen:    250,
		Cfg:                uarch.DefaultConfig(),
		NoDeltaTermination: true,
		DeltaInterval:      768,
	}
	req := campaignRequest(c, progBytes)
	req.Lo, req.Hi = 3, 11
	data, err := json.Marshal(&req)
	if err != nil {
		t.Fatal(err)
	}
	var back InjectRequest
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.N != 17 || back.Lo != 3 || back.Hi != 11 || back.Seed != 99 || back.IntermittentLen != 250 {
		t.Fatalf("scalars mangled: %+v", back)
	}
	if !back.NoDeltaTermination || back.DeltaInterval != 768 {
		t.Fatalf("delta knobs mangled: %+v", back)
	}
	if !reflect.DeepEqual(back.Cfg, req.Cfg) {
		t.Fatalf("core config mangled:\n got %+v\nwant %+v", back.Cfg, req.Cfg)
	}
	if st, err := coverage.Parse(back.Target); err != nil || st != coverage.IRF {
		t.Fatalf("wire target %q parses to %v, %v", back.Target, st, err)
	}
	if ft, err := inject.ParseFaultType(back.Type); err != nil || ft != inject.Transient {
		t.Fatalf("wire fault type %q parses to %v, %v", back.Type, ft, err)
	}
}

// Config hook fields must NOT reach the wire: they are process-local
// function pointers and json.Marshal would refuse them.
func TestConfigHooksExcludedFromWire(t *testing.T) {
	cfg := uarch.DefaultConfig()
	cfg.OnCycle = func(*uarch.Core, uint64) {}
	cfg.Events = []uarch.CycleEvent{{Start: 1, Fire: func(*uarch.Core, uint64) {}}}
	data, err := json.Marshal(cfg)
	if err != nil {
		t.Fatalf("config with hooks does not marshal: %v", err)
	}
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{"FU", "FUOutside", "OnCycle", "Events", "Trace",
		"DeltaRecord", "DeltaCompare", "DeltaQuiesce"} {
		if _, ok := m[field]; ok {
			t.Fatalf("hook field %s leaked onto the wire", field)
		}
	}
}

func TestStatsJSONRoundTrip(t *testing.T) {
	st := inject.Stats{
		N: 4, Masked: 1, SDC: 1, Crash: 1, Hang: 1,
		GoldenCycles: 12345,
		Outcomes:     []inject.Outcome{inject.Masked, inject.SDC, inject.Crash, inject.Hang},
	}
	data, err := json.Marshal(InjectResponse{Stats: st})
	if err != nil {
		t.Fatal(err)
	}
	var back InjectResponse
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !back.Stats.Equal(&st) {
		t.Fatalf("stats mangled: %+v != %+v", back.Stats, st)
	}
}
