package dist

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"harpocrates/internal/core"
	"harpocrates/internal/coverage"
	"harpocrates/internal/inject"
	"harpocrates/internal/obs"
)

// maxRequestBytes bounds a request body read. Programs are at most a
// few MB (the HXPG decoder itself enforces per-field bounds); genotype
// batches of a full population stay well under this.
const maxRequestBytes = 256 << 20

// Server is the worker side of the protocol: it grades evaluation
// batches and runs fault-injection shards on behalf of a coordinator.
// One Server is safe for concurrent requests; each inject shard and
// each eval batch already parallelizes across the worker's cores.
type Server struct {
	ob *obs.Observer
}

// NewServer returns a worker server. The observer may be nil.
func NewServer(ob *obs.Observer) *Server { return &Server{ob: ob} }

// Handler returns the worker's HTTP handler serving PathHealthz,
// PathEval and PathInject.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc(PathHealthz, s.handleHealthz)
	mux.HandleFunc(PathEval, s.handleEval)
	mux.HandleFunc(PathInject, s.handleInject)
	return mux
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.ob.Counter("dist.worker.healthz").Inc()
	writeJSON(w, HealthzResponse{OK: true})
}

// readJSON decodes a bounded POST body; a false return means the
// response is already written.
func readJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return false
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxRequestBytes))
	if err != nil {
		http.Error(w, "read body: "+err.Error(), http.StatusBadRequest)
		return false
	}
	if err := json.Unmarshal(body, v); err != nil {
		http.Error(w, "parse request: "+err.Error(), http.StatusBadRequest)
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

func (s *Server) handleEval(w http.ResponseWriter, r *http.Request) {
	stop := s.ob.Phase("dist.worker.phase.eval")
	defer stop()
	var req EvalRequest
	if !readJSON(w, r, &req) {
		return
	}
	st, err := coverage.Parse(req.Structure)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	gs, err := DecodeGenotypes(req.Genotypes)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	metric := coverage.MetricFor(st)
	resp := EvalResponse{Results: make([]WireEvalResult, len(gs))}
	for i, g := range gs {
		res := core.GradeGenotype(g, &req.Gen, req.Core, metric)
		resp.Results[i] = WireEvalResult{Fitness: res.Fitness, Snapshot: res.Snapshot}
	}
	s.ob.Counter("dist.worker.eval.batches").Inc()
	s.ob.Counter("dist.worker.eval.genotypes").Add(int64(len(gs)))
	writeJSON(w, resp)
}

func (s *Server) handleInject(w http.ResponseWriter, r *http.Request) {
	stop := s.ob.Phase("dist.worker.phase.inject")
	defer stop()
	var req InjectRequest
	if !readJSON(w, r, &req) {
		return
	}
	c, err := s.campaignFor(&req)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	st, err := c.RunRange(req.Lo, req.Hi)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	s.ob.Counter("dist.worker.inject.shards").Inc()
	s.ob.Counter("dist.worker.inject.specs").Add(int64(st.N))
	writeJSON(w, InjectResponse{Stats: *st})
}

// campaignFor reconstructs the coordinator's campaign from a shard
// request. The hook-free scalar config arrives on the wire; structure-
// specific hooks are rebuilt by the campaign itself, so the worker's
// faulty runs are bit-identical to the coordinator's.
func (s *Server) campaignFor(req *InjectRequest) (*inject.Campaign, error) {
	p, err := DecodeProgram(req.Program)
	if err != nil {
		return nil, err
	}
	target, err := coverage.Parse(req.Target)
	if err != nil {
		return nil, err
	}
	ftype, err := inject.ParseFaultType(req.Type)
	if err != nil {
		return nil, err
	}
	if req.N <= 0 {
		return nil, fmt.Errorf("dist: campaign needs N > 0")
	}
	return &inject.Campaign{
		Prog:               p.Insts,
		Init:               p.InitFunc(),
		Target:             target,
		Type:               ftype,
		N:                  req.N,
		IntermittentLen:    req.IntermittentLen,
		BurstLen:           req.BurstLen,
		Seed:               req.Seed,
		Cfg:                req.Cfg,
		CheckpointInterval: req.CheckpointInterval,
		NoFastForward:      req.NoFastForward,
		NoDeltaTermination: req.NoDeltaTermination,
		DeltaInterval:      req.DeltaInterval,
		Obs:                s.ob,
	}, nil
}
