package dist

import (
	"encoding/json"
	"io"
	"net/http"

	"harpocrates/internal/obs"
)

// maxRequestBytes bounds a request body read. Programs are at most a
// few MB (the HXPG decoder itself enforces per-field bounds); genotype
// batches of a full population stay well under this.
const maxRequestBytes = 256 << 20

// Server is the worker side of the protocol: it grades evaluation
// batches and runs fault-injection shards on behalf of a coordinator.
// One Server is safe for concurrent requests; each inject shard and
// each eval batch already parallelizes across the worker's cores.
type Server struct {
	ob *obs.Observer
}

// NewServer returns a worker server. The observer may be nil.
func NewServer(ob *obs.Observer) *Server { return &Server{ob: ob} }

// Handler returns the worker's HTTP handler serving PathHealthz,
// PathEval, PathInject and the Prometheus exposition at PathMetrics
// (empty when the server has no registry attached).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc(PathHealthz, s.handleHealthz)
	mux.HandleFunc(PathEval, s.handleEval)
	mux.HandleFunc(PathInject, s.handleInject)
	mux.Handle(PathMetrics, obs.PromHandler(s.ob.Registry()))
	return mux
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.ob.Counter("dist.worker.healthz").Inc()
	writeJSON(w, HealthzResponse{OK: true})
}

// readJSON decodes a bounded POST body; a false return means the
// response is already written.
func readJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return false
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxRequestBytes))
	if err != nil {
		http.Error(w, "read body: "+err.Error(), http.StatusBadRequest)
		return false
	}
	if err := json.Unmarshal(body, v); err != nil {
		http.Error(w, "parse request: "+err.Error(), http.StatusBadRequest)
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

func (s *Server) handleEval(w http.ResponseWriter, r *http.Request) {
	stop := s.ob.Phase("dist.worker.phase.eval")
	defer stop()
	var req EvalRequest
	if !readJSON(w, r, &req) {
		return
	}
	results, err := RunEval(&req)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	s.ob.Counter("dist.worker.eval.batches").Inc()
	s.ob.Counter("dist.worker.eval.genotypes").Add(int64(len(results)))
	writeJSON(w, EvalResponse{Results: results})
}

func (s *Server) handleInject(w http.ResponseWriter, r *http.Request) {
	stop := s.ob.Phase("dist.worker.phase.inject")
	defer stop()
	var req InjectRequest
	if !readJSON(w, r, &req) {
		return
	}
	st, err := RunInject(&req, s.ob)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	s.ob.Counter("dist.worker.inject.shards").Inc()
	s.ob.Counter("dist.worker.inject.specs").Add(int64(st.N))
	writeJSON(w, InjectResponse{Stats: *st})
}
