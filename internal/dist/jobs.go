package dist

import (
	"fmt"

	"harpocrates/internal/core"
	"harpocrates/internal/coverage"
	"harpocrates/internal/inject"
	"harpocrates/internal/obs"
	"harpocrates/internal/prog"
	"harpocrates/internal/stats"
)

// Protocol v1 extensions for the campaign-as-a-service coordinator
// (internal/queue, cmd/harpoq). The job endpoints live on the
// coordinator, not the worker: clients submit durable jobs, workers
// *pull* shards via lease/complete (work-stealing) instead of having
// fixed shard pushes sized for them. The payload shapes reuse the
// existing v1 request types — an InjectRequest template for campaign
// jobs and an EvalRequest for GA-evaluation batches — so a legacy
// push-mode harpod and a pull-mode harpod execute byte-identical work
// descriptions.
const (
	// PathJobs accepts POST (submit a JobRequest) and GET (list jobs);
	// "/v1/jobs/{id}" serves status, "/v1/jobs/{id}/stream" incremental
	// JSONL shard events, "/v1/jobs/{id}/result" the merged result and
	// "/v1/jobs/{id}/cancel" (POST) cancellation.
	PathJobs = "/v1/jobs"
	// PathLease is the worker pull endpoint: long-poll for the next
	// ready shard.
	PathLease = "/v1/lease"
	// PathComplete returns a leased shard's result to the coordinator.
	PathComplete = "/v1/complete"
	// PathMetrics serves the obs registry in Prometheus text format on
	// both coordinator and worker listeners.
	PathMetrics = "/metrics"
)

// Job kinds.
const (
	JobCampaign = "campaign"
	JobEval     = "eval"
)

// Job states.
const (
	JobStatePending   = "pending"
	JobStateRunning   = "running"
	JobStateDone      = "done"
	JobStateCancelled = "cancelled"
	JobStateFailed    = "failed"
)

// JobRequest submits one durable job to the coordinator. Exactly one of
// Inject/Eval must be set, matching Kind. For campaign jobs the
// InjectRequest is a template: Lo/Hi are ignored (the coordinator plans
// shards over [0, N)).
type JobRequest struct {
	Kind     string `json:"kind"`
	Priority int    `json:"priority,omitempty"`

	Inject *InjectRequest `json:"inject,omitempty"`
	Eval   *EvalRequest   `json:"eval,omitempty"`
}

// Validate checks the kind/payload pairing.
func (r *JobRequest) Validate() error {
	switch r.Kind {
	case JobCampaign:
		if r.Inject == nil || r.Eval != nil {
			return fmt.Errorf("dist: campaign job needs exactly an inject payload")
		}
		if r.Inject.N <= 0 {
			return fmt.Errorf("dist: campaign job needs N > 0")
		}
	case JobEval:
		if r.Eval == nil || r.Inject != nil {
			return fmt.Errorf("dist: eval job needs exactly an eval payload")
		}
		if len(r.Eval.Genotypes) == 0 {
			return fmt.Errorf("dist: eval job needs at least one genotype")
		}
	default:
		return fmt.Errorf("dist: unknown job kind %q", r.Kind)
	}
	return nil
}

// JobSubmitResponse acknowledges a submit. Shards is the planned shard
// count; CacheHits of them were served directly from the coordinator's
// result cache and will never be dispatched.
type JobSubmitResponse struct {
	ID        string `json:"id"`
	Shards    int    `json:"shards"`
	CacheHits int    `json:"cache_hits"`
}

// JobStatus is one job's externally visible state (GET /v1/jobs/{id}).
type JobStatus struct {
	ID       string `json:"id"`
	Kind     string `json:"kind"`
	State    string `json:"state"`
	Priority int    `json:"priority,omitempty"`
	Error    string `json:"error,omitempty"`

	Shards int `json:"shards"`
	Done   int `json:"done"`
	Cached int `json:"cached"`

	// Stats is the running shard-order merge of the completed shards of
	// a campaign job (partial until State == done).
	Stats *inject.Stats `json:"stats,omitempty"`
}

// JobListResponse is GET /v1/jobs (submit order).
type JobListResponse struct {
	Jobs []JobStatus `json:"jobs"`
}

// JobResult is the merged terminal result (GET /v1/jobs/{id}/result;
// 409 until the job is done).
type JobResult struct {
	ID    string `json:"id"`
	Kind  string `json:"kind"`
	State string `json:"state"`

	Stats   *inject.Stats    `json:"stats,omitempty"`   // campaign jobs
	Results []WireEvalResult `json:"results,omitempty"` // eval jobs
}

// LeaseRequest asks the coordinator for the next ready shard. WaitMs
// long-polls: the coordinator holds the request open up to that long
// waiting for work before answering "nothing".
type LeaseRequest struct {
	Worker string `json:"worker"`
	WaitMs int    `json:"wait_ms,omitempty"`
}

// LeaseResponse grants one shard (JobID == "" means no work was ready
// within the poll window). The shard payload is self-contained: Inject
// arrives with Lo/Hi filled, Eval with the shard's genotype slice, so a
// pull worker executes it exactly as a pushed request.
type LeaseResponse struct {
	JobID string `json:"job_id,omitempty"`
	Shard int    `json:"shard,omitempty"`
	Lease uint64 `json:"lease,omitempty"`
	Kind  string `json:"kind,omitempty"`

	Inject *InjectRequest `json:"inject,omitempty"`
	Eval   *EvalRequest   `json:"eval,omitempty"`
}

// CompleteRequest returns a leased shard's result. Err reports an
// execution failure (the coordinator re-queues the shard). Cached marks
// a worker-side cache hit (the shard was never simulated).
type CompleteRequest struct {
	Worker string `json:"worker"`
	JobID  string `json:"job_id"`
	Shard  int    `json:"shard"`
	Lease  uint64 `json:"lease"`

	Stats   *inject.Stats    `json:"stats,omitempty"`
	Results []WireEvalResult `json:"results,omitempty"`
	Err     string           `json:"err,omitempty"`
	Cached  bool             `json:"cached,omitempty"`
}

// CompleteResponse acknowledges a completion. Stale is set when the
// lease had already expired and been re-assigned (the result was
// discarded; the worker should just lease again).
type CompleteResponse struct {
	OK    bool `json:"ok"`
	Stale bool `json:"stale,omitempty"`
}

// StreamEvent is one line of the GET /v1/jobs/{id}/stream JSONL feed:
// a shard completion, or the terminal event (Done with the job's final
// State).
type StreamEvent struct {
	JobID  string `json:"job_id"`
	Shard  int    `json:"shard"`
	Lo     int    `json:"lo"`
	Hi     int    `json:"hi"`
	Cached bool   `json:"cached,omitempty"`
	Worker string `json:"worker,omitempty"`

	Done  bool   `json:"done,omitempty"`
	State string `json:"state,omitempty"`
}

// NewInjectRequest builds the wire template for a campaign (the
// exported form of the coordinator's internal shard template; Lo/Hi are
// left zero for the job layer to fill per shard).
func NewInjectRequest(c *inject.Campaign, p *prog.Program) (InjectRequest, error) {
	progBytes, err := EncodeProgram(p)
	if err != nil {
		return InjectRequest{}, err
	}
	return campaignRequest(c, progBytes), nil
}

// RunInject executes one campaign shard request in process — the single
// execution function shared by the push-mode worker handler, the
// pull-mode worker loop and the coordinator's local/in-process
// executors, so every path produces bit-identical shard statistics.
// Golden artifacts are reused through the process-wide cache: every
// shard of one campaign (and every campaign on the same program and
// config) computes the instrumented golden run exactly once.
func RunInject(req *InjectRequest, ob *obs.Observer) (*inject.Stats, error) {
	return RunInjectCached(req, ob, inject.SharedGoldenCache())
}

// RunInjectCached is RunInject against an explicit golden cache —
// daemons with a disk-backed cache (queue workers) pass their own; nil
// disables golden reuse for this shard.
func RunInjectCached(req *InjectRequest, ob *obs.Observer, gc *inject.GoldenCache) (*inject.Stats, error) {
	c, err := CampaignFor(req, ob)
	if err != nil {
		return nil, err
	}
	c.GoldenCache = gc
	return c.RunRange(req.Lo, req.Hi)
}

// RunEval executes one evaluation shard request in process (see
// RunInject).
func RunEval(req *EvalRequest) ([]WireEvalResult, error) {
	st, err := coverage.Parse(req.Structure)
	if err != nil {
		return nil, err
	}
	gs, err := DecodeGenotypes(req.Genotypes)
	if err != nil {
		return nil, err
	}
	metric := coverage.MetricFor(st)
	out := make([]WireEvalResult, len(gs))
	for i, g := range gs {
		res := core.GradeGenotype(g, &req.Gen, req.Core, metric)
		out[i] = WireEvalResult{Fitness: res.Fitness, Snapshot: res.Snapshot}
	}
	return out, nil
}

// PostInject dispatches one shard request to some live worker of the
// pool — the coordinator's push-mode fallback for legacy (non-pulling)
// harpods. Dispatch rotates round-robin over live workers; a worker
// that keeps failing is evicted (after the pool's usual retries) and
// the shard moves on to the next survivor. With no live worker left an
// error is returned and the caller decides (the queue coordinator runs
// the shard in process).
func (p *Pool) PostInject(req *InjectRequest) (*inject.Stats, error) {
	var resp InjectResponse
	err := p.postAnyWorker(PathInject, "dist.rpc.inject", req, &resp)
	if err != nil {
		return nil, err
	}
	if resp.Stats.N != req.Hi-req.Lo || len(resp.Stats.Outcomes) != resp.Stats.N {
		return nil, fmt.Errorf("dist: shard [%d,%d) returned %d outcomes",
			req.Lo, req.Hi, len(resp.Stats.Outcomes))
	}
	return &resp.Stats, nil
}

// PostEval dispatches one evaluation shard to some live worker (see
// PostInject).
func (p *Pool) PostEval(req *EvalRequest) ([]WireEvalResult, error) {
	var resp EvalResponse
	if err := p.postAnyWorker(PathEval, "dist.rpc.eval", req, &resp); err != nil {
		return nil, err
	}
	if len(resp.Results) != len(req.Genotypes) {
		return nil, fmt.Errorf("dist: eval shard returned %d results for %d genotypes",
			len(resp.Results), len(req.Genotypes))
	}
	return resp.Results, nil
}

// postAnyWorker tries one RPC against live workers in round-robin
// order, evicting each worker that exhausts its retries, until one
// answers or none remain.
func (p *Pool) postAnyWorker(path, counter string, reqBody, respBody any) error {
	live := p.liveWorkers()
	if len(live) == 0 {
		return fmt.Errorf("dist: no live workers")
	}
	start := int(p.rr.Add(1) - 1)
	var err error
	for i := 0; i < len(live); i++ {
		w := live[(start+i)%len(live)]
		if !w.isAlive() {
			continue
		}
		p.ob.Counter(counter).Inc()
		if err = p.withRetries(w, func() error { return p.post(w, path, reqBody, respBody) }); err == nil {
			return nil
		}
		p.evict(w, err)
	}
	if err == nil {
		err = fmt.Errorf("dist: no live workers")
	}
	return err
}

// CampaignFor reconstructs a campaign from a shard request. The
// hook-free scalar config arrives on the wire; structure-specific hooks
// are rebuilt by the campaign itself, so the executing side's faulty
// runs are bit-identical to the submitting side's.
func CampaignFor(req *InjectRequest, ob *obs.Observer) (*inject.Campaign, error) {
	p, err := DecodeProgram(req.Program)
	if err != nil {
		return nil, err
	}
	target, err := coverage.Parse(req.Target)
	if err != nil {
		return nil, err
	}
	ftype, err := inject.ParseFaultType(req.Type)
	if err != nil {
		return nil, err
	}
	if req.N <= 0 {
		return nil, fmt.Errorf("dist: campaign needs N > 0")
	}
	return &inject.Campaign{
		Prog:               p.Insts,
		Init:               p.InitFunc(),
		Target:             target,
		Type:               ftype,
		N:                  req.N,
		IntermittentLen:    req.IntermittentLen,
		BurstLen:           req.BurstLen,
		Seed:               req.Seed,
		Cfg:                req.Cfg,
		CheckpointInterval: req.CheckpointInterval,
		NoFastForward:      req.NoFastForward,
		NoDeltaTermination: req.NoDeltaTermination,
		DeltaInterval:      req.DeltaInterval,
		// The golden cache key's program component is the content hash
		// of the wire bytes — the same convention the queue result cache
		// uses, so both caches agree about what "same program" means.
		ProgramHash:   stats.HashBytes(req.Program),
		NoGoldenCache: req.NoGoldenCache,
		Obs:           ob,
	}, nil
}
