package dist

import (
	"bytes"
	"fmt"

	"harpocrates/internal/corpus"
	"harpocrates/internal/coverage"
	"harpocrates/internal/gen"
	"harpocrates/internal/inject"
	"harpocrates/internal/prog"
	"harpocrates/internal/uarch"
)

// Wire protocol v1. All endpoints speak JSON over HTTP POST (healthz is
// GET); binary payloads reuse the repo's existing container formats —
// programs travel as HXPG bytes (prog.WriteTo) and genotypes as HXGT
// bytes (corpus.EncodeGenotype) — base64-wrapped by encoding/json. The
// path prefix carries the protocol version; incompatible changes bump
// it.
const (
	PathHealthz = "/v1/healthz"
	PathEval    = "/v1/eval"
	PathInject  = "/v1/inject"
)

// InjectRequest asks a worker to run the contiguous shard [Lo, Hi) of a
// fault-injection campaign's N specs. Everything the worker needs to
// replay the coordinator's campaign deterministically is explicit:
// the serialized program, the campaign shape and the scalar core
// configuration (hook fields are rebuilt worker-side from Target/Type).
type InjectRequest struct {
	// Program is the HXPG-serialized test program.
	Program []byte `json:"program"`
	// Target is the structure name (coverage.Parse form).
	Target string `json:"target"`
	// Type is the fault type name (inject.ParseFaultType form).
	Type string `json:"type"`
	// N is the whole campaign's injection count; [Lo, Hi) is this
	// shard's spec range.
	N  int `json:"n"`
	Lo int `json:"lo"`
	Hi int `json:"hi"`

	Seed            uint64 `json:"seed"`
	IntermittentLen uint64 `json:"intermittent_len,omitempty"`
	// BurstLen is the multi-bit-upset width for bit-array targets
	// (inject.Campaign.BurstLen; 0/1 = single-bit).
	BurstLen int `json:"burst_len,omitempty"`

	Cfg                uarch.Config `json:"cfg"`
	CheckpointInterval uint64       `json:"checkpoint_interval,omitempty"`
	NoFastForward      bool         `json:"no_fast_forward,omitempty"`
	NoDeltaTermination bool         `json:"no_delta_termination,omitempty"`
	DeltaInterval      uint64       `json:"delta_interval,omitempty"`
	// NoGoldenCache disables golden artifact reuse on the executing
	// side (inject.Campaign.NoGoldenCache) — the ablation knob travels
	// with the campaign so a submitter's -no-golden-cache means the
	// same thing on every worker.
	NoGoldenCache bool `json:"no_golden_cache,omitempty"`
}

// InjectResponse carries one shard's partial statistics (Stats.N is
// Hi-Lo; Outcomes indexed from Lo).
type InjectResponse struct {
	Stats inject.Stats `json:"stats"`
}

// EvalRequest asks a worker to grade a batch of genotypes under an
// explicit evaluation configuration. The worker grades with the
// structure's default coverage metric (coverage.MetricFor), exactly as
// core.GradeGenotype does locally.
type EvalRequest struct {
	// Structure is the target structure name (coverage.Parse form).
	Structure string `json:"structure"`
	// Gen and Core are the normalized configurations of the run (the
	// same values core.Run hands to Evaluator.Configure).
	Gen  gen.Config   `json:"gen"`
	Core uarch.Config `json:"core"`
	// Genotypes are HXGT-serialized genotypes (corpus.EncodeGenotype).
	Genotypes [][]byte `json:"genotypes"`
}

// EvalResponse carries the grades, positionally aligned with the
// request's genotypes.
type EvalResponse struct {
	Results []WireEvalResult `json:"results"`
}

// WireEvalResult mirrors core.EvalResult (kept as a named local type so
// the wire schema is defined in one package).
type WireEvalResult struct {
	Fitness  float64           `json:"fitness"`
	Snapshot coverage.Snapshot `json:"snapshot"`
}

// HealthzResponse is the worker liveness probe reply.
type HealthzResponse struct {
	OK bool `json:"ok"`
}

// EncodeProgram serializes a program into its HXPG wire bytes.
func EncodeProgram(p *prog.Program) ([]byte, error) {
	var buf bytes.Buffer
	if _, err := p.WriteTo(&buf); err != nil {
		return nil, fmt.Errorf("dist: serialize program: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeProgram parses HXPG wire bytes back into a program.
func DecodeProgram(data []byte) (*prog.Program, error) {
	p, err := prog.ReadProgram(bytes.NewReader(data))
	if err != nil {
		return nil, fmt.Errorf("dist: parse program: %w", err)
	}
	return p, nil
}

// EncodeGenotypes serializes a genotype batch into HXGT wire bytes.
func EncodeGenotypes(gs []*gen.Genotype) [][]byte {
	out := make([][]byte, len(gs))
	for i, g := range gs {
		out[i] = corpus.EncodeGenotype(g)
	}
	return out
}

// DecodeGenotypes parses a batch of HXGT wire bytes.
func DecodeGenotypes(data [][]byte) ([]*gen.Genotype, error) {
	out := make([]*gen.Genotype, len(data))
	for i, d := range data {
		g, err := corpus.DecodeGenotype(d)
		if err != nil {
			return nil, fmt.Errorf("dist: genotype %d: %w", i, err)
		}
		out[i] = g
	}
	return out, nil
}

// campaignRequest builds the shard request template for a campaign
// (shard bounds are filled per dispatch).
func campaignRequest(c *inject.Campaign, progBytes []byte) InjectRequest {
	return InjectRequest{
		Program:            progBytes,
		Target:             c.Target.String(),
		Type:               c.Type.String(),
		N:                  c.N,
		Seed:               c.Seed,
		IntermittentLen:    c.IntermittentLen,
		BurstLen:           c.BurstLen,
		Cfg:                c.Cfg,
		CheckpointInterval: c.CheckpointInterval,
		NoFastForward:      c.NoFastForward,
		NoDeltaTermination: c.NoDeltaTermination,
		DeltaInterval:      c.DeltaInterval,
		NoGoldenCache:      c.NoGoldenCache,
	}
}
