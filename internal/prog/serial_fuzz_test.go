package prog

import (
	"bytes"
	"encoding/binary"
	"testing"

	"harpocrates/internal/isa"
)

// TestReadRejectsHugeRegionSize is the regression test for the
// unbounded-allocation fix: a handcrafted container whose region claims
// a ~4 GiB size must be rejected by the length check, not answered with
// an allocation.
func TestReadRejectsHugeRegionSize(t *testing.T) {
	var buf bytes.Buffer
	le := binary.LittleEndian
	put := func(v any) { _ = binary.Write(&buf, le, v) }

	put(uint32(serialMagic))
	put(uint32(serialVersion))
	put(uint32(0)) // empty name
	for i := 0; i < isa.NumGPR; i++ {
		put(uint64(0))
	}
	for i := 0; i < 2*isa.NumXMM; i++ {
		put(uint64(0))
	}
	put(uint8(0)) // flags

	put(uint32(1)) // one region
	put(uint32(0)) // empty region name
	put(uint64(0x10000))
	put(uint32(0xffffffff)) // hostile size claim
	put(uint8(2))           // data present

	_, err := ReadProgram(bytes.NewReader(buf.Bytes()))
	if err == nil {
		t.Fatal("4 GiB region size accepted")
	}
	t.Log(err)
}

// FuzzReadProgram exercises the decoder with arbitrary bytes: it must
// never panic or over-allocate, and anything it accepts must re-encode
// and re-decode to the same program (the decoder's round-trip
// property).
func FuzzReadProgram(f *testing.F) {
	// Seed with well-formed containers so the fuzzer starts from valid
	// structure and mutates length fields, region flags and opcodes.
	for seed := uint64(1); seed < 4; seed++ {
		p := randomSerialProgram(f, seed)
		var buf bytes.Buffer
		if _, err := p.WriteTo(&buf); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Add([]byte{})
	f.Add([]byte("HXPG"))

	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := ReadProgram(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Accepted input: serialization must be stable.
		var out bytes.Buffer
		if _, err := p.WriteTo(&out); err != nil {
			t.Fatalf("accepted program fails to serialize: %v", err)
		}
		q, err := ReadProgram(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-encoded program fails to decode: %v", err)
		}
		var out2 bytes.Buffer
		if _, err := q.WriteTo(&out2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(out.Bytes(), out2.Bytes()) {
			t.Fatal("decode/encode is not a fixpoint")
		}
	})
}
