// Package prog defines the self-contained functional test program
// container: an instruction sequence plus everything needed to run it
// deterministically — initial register values, memory region templates,
// and the stack. It is the analogue of MuSeqGen's generated
// microbenchmark plus its C wrapper (paper §V-D): the wrapper's
// register/memory initialization is the recorded initial state, and the
// wrapper's output computation is the architectural signature.
package prog

import (
	"fmt"

	"harpocrates/internal/arch"
	"harpocrates/internal/isa"
)

// Standard address-space layout for generated programs.
const (
	DataBase  = 0x100000
	StackBase = 0x200000
	StackSize = 16 * 1024
)

// RegionSpec is a memory region template. Data is copied into each fresh
// state, so repeated runs always start identically. A nil Data with a
// positive Size yields a zero-filled region (cheap large stacks).
type RegionSpec struct {
	Name     string
	Base     uint64
	Data     []byte
	Size     int // used when Data is nil
	Writable bool
}

// size returns the region's byte size.
func (r *RegionSpec) size() int {
	if r.Data != nil {
		return len(r.Data)
	}
	return r.Size
}

// Program is a runnable functional test program.
type Program struct {
	Name  string
	Insts []isa.Inst

	InitGPR   [isa.NumGPR]uint64
	InitXMM   [isa.NumXMM][2]uint64
	InitFlags isa.Flags

	Regions []RegionSpec
}

// Validate performs structural checks: line-aligned regions (the L1D
// model requires it) and a stack region when stack instructions appear.
func (p *Program) Validate() error {
	for i := range p.Regions {
		r := &p.Regions[i]
		if r.Base%64 != 0 || r.size()%64 != 0 {
			return fmt.Errorf("prog %q: region %q not 64-byte aligned", p.Name, r.Name)
		}
	}
	return nil
}

// NewState builds a fresh architectural state for one run.
func (p *Program) NewState() *arch.State {
	mem := arch.NewMemory()
	for i := range p.Regions {
		r := &p.Regions[i]
		data := make([]byte, r.size())
		copy(data, r.Data)
		if err := mem.AddRegion(&arch.Region{Name: r.Name, Base: r.Base, Data: data, Writable: r.Writable}); err != nil {
			panic(fmt.Sprintf("prog %q: %v", p.Name, err))
		}
	}
	s := arch.NewState(mem)
	s.GPR = p.InitGPR
	s.XMM = p.InitXMM
	s.Flags = p.InitFlags
	return s
}

// InitFunc returns a fresh-state factory (the form fault campaigns
// consume).
func (p *Program) InitFunc() func() *arch.State {
	return func() *arch.State { return p.NewState() }
}

// GoldenRun executes the program on the functional emulator and returns
// retired instructions, the output signature and any crash.
func (p *Program) GoldenRun(maxSteps int) (int, uint64, *arch.CrashError) {
	s := p.NewState()
	n, err := arch.Run(p.Insts, s, maxSteps)
	return n, s.Signature(), err
}

// Deterministic reports whether two emulator runs with different
// nondeterminism salts produce the same output — the determinism filter
// both MuSeqGen and the SiliFuzz snapshot selection apply (§V-B).
func (p *Program) Deterministic(maxSteps int) bool {
	s1 := p.NewState()
	s1.NondetSalt = 1
	n1, e1 := arch.Run(p.Insts, s1, maxSteps)
	s2 := p.NewState()
	s2.NondetSalt = 2
	n2, e2 := arch.Run(p.Insts, s2, maxSteps)
	if (e1 == nil) != (e2 == nil) || n1 != n2 {
		return false
	}
	if e1 != nil {
		return e1.Kind == e2.Kind && e1.PC == e2.PC
	}
	return s1.Signature() == s2.Signature()
}

// EncodedLen returns the byte-encoded size of the instruction sequence.
func (p *Program) EncodedLen() int {
	n := 0
	for _, in := range p.Insts {
		n += isa.EncodedLen(in)
	}
	return n
}

// Encode returns the byte encoding of the instruction sequence.
func (p *Program) Encode() []byte {
	buf := make([]byte, 0, p.EncodedLen())
	for _, in := range p.Insts {
		buf = isa.Encode(buf, in)
	}
	return buf
}

// Disassemble renders the program as assembly text.
func (p *Program) Disassemble() string {
	s := ""
	for i, in := range p.Insts {
		s += fmt.Sprintf("%5d:  %s\n", i, in.String())
	}
	return s
}

// Clone deep-copies the program (mutation works on copies).
func (p *Program) Clone() *Program {
	c := *p
	c.Insts = make([]isa.Inst, len(p.Insts))
	copy(c.Insts, p.Insts)
	c.Regions = make([]RegionSpec, len(p.Regions))
	copy(c.Regions, p.Regions)
	for i := range c.Regions {
		d := make([]byte, len(p.Regions[i].Data))
		copy(d, p.Regions[i].Data)
		c.Regions[i].Data = d
	}
	return &c
}
