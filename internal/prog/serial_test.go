package prog

import (
	"bytes"
	"math/rand/v2"
	"path/filepath"
	"testing"

	"harpocrates/internal/isa"
)

func randomSerialProgram(t testing.TB, seed uint64) *Program {
	t.Helper()
	rng := rand.New(rand.NewPCG(seed, seed+1))
	det := isa.Deterministic()
	p := &Program{
		Name: "serial-test",
		Regions: []RegionSpec{
			{Name: "data", Base: DataBase, Data: make([]byte, 4096), Writable: true},
			{Name: "zeros", Base: DataBase + 1<<22, Size: 8192, Writable: true},
			{Name: "stack", Base: StackBase, Size: StackSize, Writable: true},
		},
	}
	for i := range p.Regions[0].Data {
		p.Regions[0].Data[i] = byte(rng.Uint32())
	}
	for i := range p.InitGPR {
		p.InitGPR[i] = rng.Uint64()
	}
	for i := range p.InitXMM {
		p.InitXMM[i] = [2]uint64{rng.Uint64(), rng.Uint64()}
	}
	p.InitFlags = isa.Flags(rng.Uint32()) & isa.AllFlags
	for i := 0; i < 200; i++ {
		id := det[rng.IntN(len(det))]
		v := isa.Lookup(id)
		in := isa.Inst{V: id, NOps: uint8(len(v.Ops))}
		for k, spec := range v.Ops {
			switch spec.Kind {
			case isa.KReg:
				in.Ops[k] = isa.RegOp(isa.Reg(rng.IntN(isa.NumGPR)))
			case isa.KXmm:
				in.Ops[k] = isa.XmmOp(isa.XReg(rng.IntN(isa.NumXMM)))
			case isa.KImm:
				w := spec.Width
				if w > isa.W64 {
					w = isa.W64
				}
				sh := 64 - 8*uint(w)
				in.Ops[k] = isa.ImmOp(int64(rng.Uint64()<<sh) >> sh)
			case isa.KMem:
				in.Ops[k] = isa.MemOp(isa.Reg(rng.IntN(isa.NumGPR)), int32(rng.IntN(4096)))
			}
		}
		p.Insts = append(p.Insts, in)
	}
	return p
}

func TestSerializationRoundTrip(t *testing.T) {
	for seed := uint64(1); seed < 20; seed++ {
		p := randomSerialProgram(t, seed)
		var buf bytes.Buffer
		if _, err := p.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		q, err := ReadProgram(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if q.Name != p.Name || q.InitGPR != p.InitGPR || q.InitXMM != p.InitXMM || q.InitFlags != p.InitFlags {
			t.Fatal("state round trip mismatch")
		}
		if len(q.Insts) != len(p.Insts) {
			t.Fatalf("instruction count %d != %d", len(q.Insts), len(p.Insts))
		}
		for i := range p.Insts {
			if q.Insts[i] != p.Insts[i] {
				t.Fatalf("instruction %d differs", i)
			}
		}
		if len(q.Regions) != len(p.Regions) {
			t.Fatal("region count mismatch")
		}
		for i := range p.Regions {
			a, b := &p.Regions[i], &q.Regions[i]
			if a.Name != b.Name || a.Base != b.Base || a.Writable != b.Writable || a.size() != b.size() {
				t.Fatalf("region %d header mismatch", i)
			}
			if !bytes.Equal(a.Data, b.Data) {
				t.Fatalf("region %d data mismatch", i)
			}
		}
	}
}

func TestSaveLoadFile(t *testing.T) {
	p := randomSerialProgram(t, 42)
	path := filepath.Join(t.TempDir(), "prog.hxpg")
	if err := p.Save(path); err != nil {
		t.Fatal(err)
	}
	q, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	// Behavioural equivalence: same signature from a golden run.
	_, s1, e1 := p.GoldenRun(10000)
	_, s2, e2 := q.GoldenRun(10000)
	if (e1 == nil) != (e2 == nil) || (e1 == nil && s1 != s2) {
		t.Fatal("loaded program behaves differently")
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := ReadProgram(bytes.NewReader([]byte("not a program"))); err == nil {
		t.Fatal("garbage accepted")
	}
	// Bad magic.
	var buf bytes.Buffer
	p := randomSerialProgram(t, 7)
	if _, err := p.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[0] ^= 0xff
	if _, err := ReadProgram(bytes.NewReader(data)); err == nil {
		t.Fatal("bad magic accepted")
	}
	// Truncation at every prefix must error, not panic.
	data[0] ^= 0xff
	for cut := 0; cut < len(data); cut += 97 {
		if _, err := ReadProgram(bytes.NewReader(data[:cut])); err == nil {
			t.Fatalf("truncated prefix %d accepted", cut)
		}
	}
}
