package prog

import (
	"testing"

	"harpocrates/internal/isa"
)

func sampleProgram(t *testing.T) *Program {
	t.Helper()
	var addRI isa.VariantID
	for _, id := range isa.ByOp(isa.OpADD) {
		v := isa.Lookup(id)
		if v.Width == isa.W64 && len(v.Ops) == 2 && v.Ops[1].Kind == isa.KImm {
			addRI = id
		}
	}
	p := &Program{
		Name: "sample",
		Insts: []isa.Inst{
			isa.MakeInst(addRI, isa.RegOp(isa.RAX), isa.ImmOp(5)),
			isa.MakeInst(addRI, isa.RegOp(isa.RBX), isa.ImmOp(7)),
		},
		Regions: []RegionSpec{
			{Name: "data", Base: DataBase, Data: make([]byte, 4096), Writable: true},
			{Name: "stack", Base: StackBase, Size: StackSize, Writable: true},
		},
	}
	p.InitGPR[isa.RSP] = StackBase + StackSize/2
	return p
}

func TestValidateAlignment(t *testing.T) {
	p := sampleProgram(t)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	p.Regions[0].Base = DataBase + 8
	if err := p.Validate(); err == nil {
		t.Fatal("misaligned region accepted")
	}
}

func TestGoldenRunAndSignatureStable(t *testing.T) {
	p := sampleProgram(t)
	n1, s1, err1 := p.GoldenRun(100)
	n2, s2, err2 := p.GoldenRun(100)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if n1 != 2 || n2 != 2 || s1 != s2 {
		t.Fatalf("golden runs differ: %d/%d %x/%x", n1, n2, s1, s2)
	}
}

func TestNewStateIsolated(t *testing.T) {
	p := sampleProgram(t)
	s1 := p.NewState()
	s1.GPR[isa.RAX] = 99
	if err := s1.Mem.Write(DataBase, 8, 0xff); err != nil {
		t.Fatal(err)
	}
	s2 := p.NewState()
	if s2.GPR[isa.RAX] != 0 {
		t.Fatal("states share registers")
	}
	v, _ := s2.Mem.Read(DataBase, 8)
	if v != 0 {
		t.Fatal("states share memory")
	}
}

func TestDeterministicFilter(t *testing.T) {
	p := sampleProgram(t)
	if !p.Deterministic(100) {
		t.Fatal("pure ALU program flagged nondeterministic")
	}
	rdrand := isa.ByOp(isa.OpRDRAND)[0]
	p.Insts = append(p.Insts, isa.MakeInst(rdrand, isa.RegOp(isa.RCX)))
	if p.Deterministic(100) {
		t.Fatal("rdrand program flagged deterministic")
	}
}

func TestEncodeLenMatches(t *testing.T) {
	p := sampleProgram(t)
	if len(p.Encode()) != p.EncodedLen() {
		t.Fatal("EncodedLen mismatch")
	}
}

func TestCloneIsolation(t *testing.T) {
	p := sampleProgram(t)
	c := p.Clone()
	c.Insts[0].Ops[1].Imm = 42
	c.Regions[0].Data[0] = 0xaa
	if p.Insts[0].Ops[1].Imm == 42 || p.Regions[0].Data[0] == 0xaa {
		t.Fatal("clone shares storage")
	}
}

func TestDisassemble(t *testing.T) {
	p := sampleProgram(t)
	d := p.Disassemble()
	if d == "" {
		t.Fatal("empty disassembly")
	}
}
