package prog

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"harpocrates/internal/isa"
)

// Binary container format for test programs ("HXPG"): generated and
// evolved programs can be persisted and reloaded — the corpus artifacts
// the paper's toolchain passes between the generator, the grading engine
// and the fleet-deployment side.
const (
	serialMagic   = 0x48585047 // "HXPG"
	serialVersion = 1
)

// WriteTo serializes the program.
func (p *Program) WriteTo(w io.Writer) (int64, error) {
	var buf bytes.Buffer
	le := binary.LittleEndian
	put := func(v any) { _ = binary.Write(&buf, le, v) }
	putBytes := func(b []byte) {
		put(uint32(len(b)))
		buf.Write(b)
	}

	put(uint32(serialMagic))
	put(uint32(serialVersion))
	putBytes([]byte(p.Name))
	for _, v := range p.InitGPR {
		put(v)
	}
	for _, x := range p.InitXMM {
		put(x[0])
		put(x[1])
	}
	put(uint8(p.InitFlags))

	put(uint32(len(p.Regions)))
	for i := range p.Regions {
		r := &p.Regions[i]
		putBytes([]byte(r.Name))
		put(r.Base)
		put(uint32(r.size()))
		var flags uint8
		if r.Writable {
			flags |= 1
		}
		if r.Data != nil {
			flags |= 2
		}
		put(flags)
		if r.Data != nil {
			buf.Write(r.Data)
		}
	}

	put(uint32(len(p.Insts)))
	var enc []byte
	for _, in := range p.Insts {
		enc = isa.Encode(enc, in)
	}
	putBytes(enc)

	n, err := w.Write(buf.Bytes())
	return int64(n), err
}

// ReadProgram deserializes a program written by WriteTo.
func ReadProgram(r io.Reader) (*Program, error) {
	le := binary.LittleEndian
	get := func(v any) error { return binary.Read(r, le, v) }
	// readN reads exactly n bytes. The length fields of the container are
	// untrusted: the count is bounded before any allocation, and the copy
	// grows incrementally (io.CopyN buffers) so a hostile length claim
	// backed by a short stream costs only the bytes actually present, not
	// an up-front make([]byte, n).
	readN := func(n uint32, what string) ([]byte, error) {
		if n > 1<<30 {
			return nil, fmt.Errorf("prog: unreasonable %s size %d", what, n)
		}
		var bb bytes.Buffer
		if _, err := io.CopyN(&bb, r, int64(n)); err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return nil, err
		}
		return bb.Bytes(), nil
	}
	getBytes := func() ([]byte, error) {
		var n uint32
		if err := get(&n); err != nil {
			return nil, err
		}
		return readN(n, "field")
	}

	var magic, version uint32
	if err := get(&magic); err != nil {
		return nil, err
	}
	if magic != serialMagic {
		return nil, fmt.Errorf("prog: bad magic %#x", magic)
	}
	if err := get(&version); err != nil {
		return nil, err
	}
	if version != serialVersion {
		return nil, fmt.Errorf("prog: unsupported version %d", version)
	}

	p := &Program{}
	name, err := getBytes()
	if err != nil {
		return nil, err
	}
	p.Name = string(name)
	for i := range p.InitGPR {
		if err := get(&p.InitGPR[i]); err != nil {
			return nil, err
		}
	}
	for i := range p.InitXMM {
		if err := get(&p.InitXMM[i][0]); err != nil {
			return nil, err
		}
		if err := get(&p.InitXMM[i][1]); err != nil {
			return nil, err
		}
	}
	var fl uint8
	if err := get(&fl); err != nil {
		return nil, err
	}
	p.InitFlags = isa.Flags(fl)

	var nRegions uint32
	if err := get(&nRegions); err != nil {
		return nil, err
	}
	if nRegions > 64 {
		return nil, fmt.Errorf("prog: unreasonable region count %d", nRegions)
	}
	for i := uint32(0); i < nRegions; i++ {
		var spec RegionSpec
		rn, err := getBytes()
		if err != nil {
			return nil, err
		}
		spec.Name = string(rn)
		if err := get(&spec.Base); err != nil {
			return nil, err
		}
		var size uint32
		if err := get(&size); err != nil {
			return nil, err
		}
		// The region size is as untrusted as every other length field:
		// unchecked, a corrupt file could demand up to 64 × 4 GiB of
		// allocations (one per region) before any read failed.
		if size > 1<<30 {
			return nil, fmt.Errorf("prog: unreasonable region size %d", size)
		}
		var flags uint8
		if err := get(&flags); err != nil {
			return nil, err
		}
		spec.Writable = flags&1 != 0
		if flags&2 != 0 {
			data, err := readN(size, "region")
			if err != nil {
				return nil, err
			}
			spec.Data = data
		} else {
			spec.Size = int(size)
		}
		p.Regions = append(p.Regions, spec)
	}

	var nInsts uint32
	if err := get(&nInsts); err != nil {
		return nil, err
	}
	enc, err := getBytes()
	if err != nil {
		return nil, err
	}
	for i := uint32(0); i < nInsts; i++ {
		in, n, derr := isa.Decode(enc)
		if derr != nil {
			return nil, fmt.Errorf("prog: instruction %d: %w", i, derr)
		}
		p.Insts = append(p.Insts, in)
		enc = enc[n:]
	}
	if len(enc) != 0 {
		return nil, fmt.Errorf("prog: %d trailing bytes after instructions", len(enc))
	}
	return p, p.Validate()
}

// Save writes the program to a file.
func (p *Program) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := p.WriteTo(f); err != nil {
		return err
	}
	return f.Close()
}

// Load reads a program from a file.
func Load(path string) (*Program, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadProgram(f)
}
