package arch

import (
	"math"
	"math/bits"
	"math/rand/v2"
	"testing"

	"harpocrates/internal/isa"
)

// testMem builds a memory with a 4 KB writable data region at 0x10000 and
// a 4 KB stack at 0x20000.
func testMem(t testing.TB) *Memory {
	t.Helper()
	m := NewMemory()
	if err := m.AddRegion(&Region{Name: "data", Base: 0x10000, Data: make([]byte, 4096), Writable: true}); err != nil {
		t.Fatal(err)
	}
	if err := m.AddRegion(&Region{Name: "stack", Base: 0x20000, Data: make([]byte, 4096), Writable: true}); err != nil {
		t.Fatal(err)
	}
	return m
}

func testState(t testing.TB) *State {
	s := NewState(testMem(t))
	s.GPR[isa.RSP] = 0x20000 + 4096
	s.GPR[isa.RSI] = 0x10000
	return s
}

// findVariant locates a variant by family and operand kinds/width.
func findVariant(t testing.TB, op isa.Op, w isa.Width, kinds ...isa.OpKind) isa.VariantID {
	t.Helper()
	for _, id := range isa.ByOp(op) {
		v := isa.Lookup(id)
		if v.Width != w || len(v.Ops) != len(kinds) {
			continue
		}
		ok := true
		for i, k := range kinds {
			if v.Ops[i].Kind != k {
				ok = false
			}
		}
		if ok {
			return id
		}
	}
	t.Fatalf("no variant for op=%d w=%v kinds=%v", op, w, kinds)
	return 0
}

// findVariantCond is findVariant filtered by condition code.
func findVariantCond(t testing.TB, op isa.Op, c isa.Cond, kinds ...isa.OpKind) isa.VariantID {
	t.Helper()
	for _, id := range isa.ByOp(op) {
		v := isa.Lookup(id)
		if v.Cond != c || len(v.Ops) != len(kinds) {
			continue
		}
		ok := true
		for i, k := range kinds {
			if v.Ops[i].Kind != k {
				ok = false
			}
		}
		if ok {
			return id
		}
	}
	t.Fatalf("no cond variant for op=%d cond=%v", op, c)
	return 0
}

func step1(t *testing.T, s *State, in isa.Inst) {
	t.Helper()
	prog := []isa.Inst{in}
	s.PC = 0
	if err := s.Step(prog); err != nil {
		t.Fatalf("%v: %v", in, err)
	}
}

func TestAddFlags(t *testing.T) {
	s := testState(t)
	addRR := findVariant(t, isa.OpADD, isa.W8, isa.KReg, isa.KReg)
	cases := []struct {
		a, b  uint64
		res   uint64
		flags isa.Flags
	}{
		{0x80, 0x80, 0x00, isa.CF | isa.OF | isa.ZF | isa.PF},
		{0x01, 0x7f, 0x80, isa.OF | isa.SF},
		{0xff, 0x01, 0x00, isa.CF | isa.ZF | isa.PF},
		{0x01, 0x02, 0x03, isa.PF},
		{0x00, 0x00, 0x00, isa.ZF | isa.PF},
	}
	for _, c := range cases {
		s.GPR[isa.RAX] = c.a
		s.GPR[isa.RBX] = c.b
		s.Flags = 0
		step1(t, s, isa.MakeInst(addRR, isa.RegOp(isa.RAX), isa.RegOp(isa.RBX)))
		if got := s.GPR[isa.RAX] & 0xff; got != c.res {
			t.Errorf("add8 %#x+%#x = %#x, want %#x", c.a, c.b, got, c.res)
		}
		if s.Flags != c.flags {
			t.Errorf("add8 %#x+%#x flags = %v, want %v", c.a, c.b, s.Flags, c.flags)
		}
	}
}

func TestSubFlags(t *testing.T) {
	s := testState(t)
	subRR := findVariant(t, isa.OpSUB, isa.W8, isa.KReg, isa.KReg)
	cases := []struct {
		a, b  uint64
		res   uint64
		flags isa.Flags
	}{
		{0x00, 0x01, 0xff, isa.CF | isa.SF | isa.PF},
		{0x80, 0x01, 0x7f, isa.OF},
		{0x05, 0x05, 0x00, isa.ZF | isa.PF},
		{0x07, 0x03, 0x04, 0},
	}
	for _, c := range cases {
		s.GPR[isa.RAX] = c.a
		s.GPR[isa.RBX] = c.b
		s.Flags = 0
		step1(t, s, isa.MakeInst(subRR, isa.RegOp(isa.RAX), isa.RegOp(isa.RBX)))
		if got := s.GPR[isa.RAX] & 0xff; got != c.res {
			t.Errorf("sub8 %#x-%#x = %#x, want %#x", c.a, c.b, got, c.res)
		}
		if s.Flags != c.flags {
			t.Errorf("sub8 %#x-%#x flags = %v, want %v", c.a, c.b, s.Flags, c.flags)
		}
	}
}

// Property: 64-bit ADD matches math/bits reference for value, CF and OF.
func TestAddCore64Property(t *testing.T) {
	s := testState(t)
	rng := rand.New(rand.NewPCG(11, 12))
	for i := 0; i < 100000; i++ {
		a, b := rng.Uint64(), rng.Uint64()
		cin := rng.IntN(2) == 1
		var ci uint64
		if cin {
			ci = 1
		}
		wantSum, wantCarry := bits.Add64(a, b, ci)
		res, cf, of := s.addCore(a, b, cin, isa.W64)
		if res != wantSum || cf != (wantCarry == 1) {
			t.Fatalf("addCore(%#x,%#x,%v) = %#x,%v want %#x,%v", a, b, cin, res, cf, wantSum, wantCarry == 1)
		}
		wantOF := (int64(a) >= 0) == (int64(b) >= 0) && (int64(a) >= 0) != (int64(res) >= 0)
		// With carry-in, derive OF via signed 128-bit reference.
		sa, sb := int64(a), int64(b)
		wide := int64ToWide(sa) + int64ToWide(sb) + int64(ci)
		wantOF = wide != int64(res) && true
		_ = wantOF
		// Signed overflow iff the 65-bit signed sum is unrepresentable.
		sum := sa + sb + int64(ci)
		overflowed := ((sa > 0 && sb >= 0 || sa >= 0 && sb > 0) && sum <= 0 && (sa|sb) != 0 && !(sa == 0 && sb == 0)) ||
			(sa < 0 && sb < 0 && sum >= 0)
		// The branchy reference above is fragile; use the carry-based
		// identity instead: OF = carry-into-msb XOR carry-out-of-msb.
		ciBits := a ^ b ^ res
		coBits := (a & b) | ((a | b) & ciBits)
		refOF := ((ciBits^coBits)>>63)&1 == 1
		_ = overflowed
		if of != refOF {
			t.Fatalf("addCore OF mismatch for %#x+%#x+%v", a, b, cin)
		}
	}
}

func int64ToWide(v int64) int64 { return v }

// Property: subCore matches native subtraction with borrow.
func TestSubCoreProperty(t *testing.T) {
	s := testState(t)
	rng := rand.New(rand.NewPCG(13, 14))
	for i := 0; i < 100000; i++ {
		a, b := rng.Uint64(), rng.Uint64()
		bin := rng.IntN(2) == 1
		var bi uint64
		if bin {
			bi = 1
		}
		wantDiff, wantBorrow := bits.Sub64(a, b, bi)
		res, cf, _ := s.subCore(a, b, bin, isa.W64)
		if res != wantDiff || cf != (wantBorrow == 1) {
			t.Fatalf("subCore(%#x,%#x,%v) = %#x,cf=%v want %#x,%v", a, b, bin, res, cf, wantDiff, wantBorrow == 1)
		}
	}
}

func TestPartialWidthWrites(t *testing.T) {
	s := testState(t)
	s.GPR[isa.RAX] = 0xdeadbeefcafebabe
	mov8 := findVariant(t, isa.OpMOV, isa.W8, isa.KReg, isa.KImm)
	step1(t, s, isa.MakeInst(mov8, isa.RegOp(isa.RAX), isa.ImmOp(0x11)))
	if s.GPR[isa.RAX] != 0xdeadbeefcafeba11 {
		t.Errorf("8-bit write must merge: got %#x", s.GPR[isa.RAX])
	}
	mov32 := findVariant(t, isa.OpMOV, isa.W32, isa.KReg, isa.KImm)
	step1(t, s, isa.MakeInst(mov32, isa.RegOp(isa.RAX), isa.ImmOp(0x22)))
	if s.GPR[isa.RAX] != 0x22 {
		t.Errorf("32-bit write must zero-extend: got %#x", s.GPR[isa.RAX])
	}
}

func TestMulImplicitRegisters(t *testing.T) {
	s := testState(t)
	mul64 := findVariant(t, isa.OpMUL, isa.W64, isa.KReg)
	s.GPR[isa.RAX] = 1 << 63
	s.GPR[isa.RBX] = 4
	step1(t, s, isa.MakeInst(mul64, isa.RegOp(isa.RBX)))
	if s.GPR[isa.RAX] != 0 || s.GPR[isa.RDX] != 2 {
		t.Errorf("mul: RDX:RAX = %#x:%#x, want 2:0", s.GPR[isa.RDX], s.GPR[isa.RAX])
	}
	if s.Flags&isa.CF == 0 || s.Flags&isa.OF == 0 {
		t.Error("mul with nonzero high half must set CF and OF")
	}
}

func TestIMulSigned(t *testing.T) {
	s := testState(t)
	imul := findVariant(t, isa.OpIMUL, isa.W64, isa.KReg)
	neg3 := uint64(3)
	s.GPR[isa.RAX] = -neg3
	s.GPR[isa.RBX] = 7
	step1(t, s, isa.MakeInst(imul, isa.RegOp(isa.RBX)))
	if int64(s.GPR[isa.RAX]) != -21 {
		t.Errorf("imul: RAX = %d, want -21", int64(s.GPR[isa.RAX]))
	}
	if s.GPR[isa.RDX] != ^uint64(0) {
		t.Errorf("imul: RDX = %#x, want all-ones (sign extension)", s.GPR[isa.RDX])
	}
	if s.Flags&isa.CF != 0 {
		t.Error("imul without overflow must clear CF")
	}
}

func TestDivQuotientRemainder(t *testing.T) {
	s := testState(t)
	div32 := findVariant(t, isa.OpDIV, isa.W32, isa.KReg)
	s.GPR[isa.RDX] = 0
	s.GPR[isa.RAX] = 100
	s.GPR[isa.RBX] = 7
	step1(t, s, isa.MakeInst(div32, isa.RegOp(isa.RBX)))
	if s.GPR[isa.RAX] != 14 || s.GPR[isa.RDX] != 2 {
		t.Errorf("div: q=%d r=%d, want 14, 2", s.GPR[isa.RAX], s.GPR[isa.RDX])
	}
}

func TestDivByZeroCrashes(t *testing.T) {
	s := testState(t)
	div := findVariant(t, isa.OpDIV, isa.W64, isa.KReg)
	s.GPR[isa.RBX] = 0
	prog := []isa.Inst{isa.MakeInst(div, isa.RegOp(isa.RBX))}
	err := s.Step(prog)
	if err == nil || err.Kind != CrashDivide {
		t.Fatalf("div by zero: err = %v, want divide crash", err)
	}
}

func TestDivQuotientOverflowCrashes(t *testing.T) {
	s := testState(t)
	div := findVariant(t, isa.OpDIV, isa.W64, isa.KReg)
	s.GPR[isa.RDX] = 5 // dividend high >= divisor -> overflow
	s.GPR[isa.RAX] = 0
	s.GPR[isa.RBX] = 3
	prog := []isa.Inst{isa.MakeInst(div, isa.RegOp(isa.RBX))}
	err := s.Step(prog)
	if err == nil || err.Kind != CrashDivide {
		t.Fatalf("overflowing div: err = %v, want divide crash", err)
	}
}

func TestIDivSigned(t *testing.T) {
	s := testState(t)
	idiv32 := findVariant(t, isa.OpIDIV, isa.W32, isa.KReg)
	n100 := uint32(100)
	s.GPR[isa.RAX] = uint64(-n100)
	s.GPR[isa.RDX] = 0xffffffff // sign extension of -100
	s.GPR[isa.RBX] = 7
	step1(t, s, isa.MakeInst(idiv32, isa.RegOp(isa.RBX)))
	if int32(uint32(s.GPR[isa.RAX])) != -14 || int32(uint32(s.GPR[isa.RDX])) != -2 {
		t.Errorf("idiv: q=%d r=%d, want -14, -2", int32(uint32(s.GPR[isa.RAX])), int32(uint32(s.GPR[isa.RDX])))
	}
}

// TestRCRRotateEqualsWidth is the regression for the gem5 v22 RCR
// emulation bug the paper reports finding (§VI-D): rotate-through-carry
// by exactly the register width must rotate the carry bit through,
// not act as a no-op or crash.
func TestRCRRotateEqualsWidth(t *testing.T) {
	s := testState(t)
	rcr8 := findVariant(t, isa.OpRCR, isa.W8, isa.KReg, isa.KImm)
	s.GPR[isa.RAX] = 0b10110101
	s.Flags = isa.CF // carry set
	step1(t, s, isa.MakeInst(rcr8, isa.RegOp(isa.RAX), isa.ImmOp(8)))
	// 9-bit value CF:val = 1:10110101 rotated right 8 = the original
	// value's low 8 bits shifted... reference: rotate right by 8 of the
	// 9-bit quantity c b7..b0 gives b7..b1 b0->? Compute directly:
	// combined = (1<<8)|0b10110101 = 0x1B5. ror9(0x1B5, 8) =
	// (0x1B5 >> 8 | 0x1B5 << 1) & 0x1FF = 0x1 | 0x16A = 0x16B.
	// Result bits = 0x6B, new CF = bit8 = 1.
	if got := s.GPR[isa.RAX] & 0xff; got != 0x6b {
		t.Errorf("rcr8 by 8: result = %#x, want 0x6b", got)
	}
	if s.Flags&isa.CF == 0 {
		t.Error("rcr8 by 8: CF must be set")
	}
}

// Property: RCL then RCR by the same amount restores value and carry.
func TestRclRcrInverseProperty(t *testing.T) {
	s := testState(t)
	rng := rand.New(rand.NewPCG(15, 16))
	rcl := findVariant(t, isa.OpRCL, isa.W32, isa.KReg, isa.KImm)
	rcr := findVariant(t, isa.OpRCR, isa.W32, isa.KReg, isa.KImm)
	for i := 0; i < 5000; i++ {
		val := uint64(rng.Uint32())
		n := int64(rng.IntN(31)) // stays below the 31-count mask
		cf := rng.IntN(2) == 1
		s.GPR[isa.RAX] = val
		s.Flags = 0
		if cf {
			s.Flags = isa.CF
		}
		step1(t, s, isa.MakeInst(rcl, isa.RegOp(isa.RAX), isa.ImmOp(n)))
		step1(t, s, isa.MakeInst(rcr, isa.RegOp(isa.RAX), isa.ImmOp(n)))
		if s.GPR[isa.RAX]&0xffffffff != val || (s.Flags&isa.CF != 0) != cf {
			t.Fatalf("rcl/rcr(%#x, %d, cf=%v) not inverse: got %#x cf=%v",
				val, n, cf, s.GPR[isa.RAX], s.Flags&isa.CF != 0)
		}
	}
}

// Property: ROL by n then ROR by n is the identity on the value.
func TestRolRorInverseProperty(t *testing.T) {
	s := testState(t)
	rng := rand.New(rand.NewPCG(17, 18))
	rol := findVariant(t, isa.OpROL, isa.W64, isa.KReg, isa.KImm)
	ror := findVariant(t, isa.OpROR, isa.W64, isa.KReg, isa.KImm)
	for i := 0; i < 5000; i++ {
		val := rng.Uint64()
		n := int64(rng.IntN(64))
		s.GPR[isa.RAX] = val
		step1(t, s, isa.MakeInst(rol, isa.RegOp(isa.RAX), isa.ImmOp(n)))
		step1(t, s, isa.MakeInst(ror, isa.RegOp(isa.RAX), isa.ImmOp(n)))
		if s.GPR[isa.RAX] != val {
			t.Fatalf("rol/ror(%#x, %d) not inverse: got %#x", val, n, s.GPR[isa.RAX])
		}
	}
}

func TestShiftMatchesGo(t *testing.T) {
	s := testState(t)
	rng := rand.New(rand.NewPCG(19, 20))
	shl := findVariant(t, isa.OpSHL, isa.W64, isa.KReg, isa.KImm)
	shr := findVariant(t, isa.OpSHR, isa.W64, isa.KReg, isa.KImm)
	sar := findVariant(t, isa.OpSAR, isa.W64, isa.KReg, isa.KImm)
	for i := 0; i < 5000; i++ {
		val := rng.Uint64()
		n := int64(rng.IntN(63) + 1)
		s.GPR[isa.RAX] = val
		step1(t, s, isa.MakeInst(shl, isa.RegOp(isa.RAX), isa.ImmOp(n)))
		if s.GPR[isa.RAX] != val<<uint(n) {
			t.Fatalf("shl(%#x,%d) = %#x", val, n, s.GPR[isa.RAX])
		}
		s.GPR[isa.RAX] = val
		step1(t, s, isa.MakeInst(shr, isa.RegOp(isa.RAX), isa.ImmOp(n)))
		if s.GPR[isa.RAX] != val>>uint(n) {
			t.Fatalf("shr(%#x,%d) = %#x", val, n, s.GPR[isa.RAX])
		}
		s.GPR[isa.RAX] = val
		step1(t, s, isa.MakeInst(sar, isa.RegOp(isa.RAX), isa.ImmOp(n)))
		if s.GPR[isa.RAX] != uint64(int64(val)>>uint(n)) {
			t.Fatalf("sar(%#x,%d) = %#x", val, n, s.GPR[isa.RAX])
		}
	}
}

func TestMemoryLoadStore(t *testing.T) {
	s := testState(t)
	mov := findVariant(t, isa.OpMOV, isa.W64, isa.KMem, isa.KReg)
	movLoad := findVariant(t, isa.OpMOV, isa.W64, isa.KReg, isa.KMem)
	s.GPR[isa.RBX] = 0x1122334455667788
	step1(t, s, isa.MakeInst(mov, isa.MemOp(isa.RSI, 16), isa.RegOp(isa.RBX)))
	step1(t, s, isa.MakeInst(movLoad, isa.RegOp(isa.RCX), isa.MemOp(isa.RSI, 16)))
	if s.GPR[isa.RCX] != 0x1122334455667788 {
		t.Errorf("load after store: %#x", s.GPR[isa.RCX])
	}
}

func TestMemoryOutOfRegionCrashes(t *testing.T) {
	s := testState(t)
	movLoad := findVariant(t, isa.OpMOV, isa.W64, isa.KReg, isa.KMem)
	s.GPR[isa.RDI] = 0x999999 // nowhere
	prog := []isa.Inst{isa.MakeInst(movLoad, isa.RegOp(isa.RCX), isa.MemOp(isa.RDI, 0))}
	err := s.Step(prog)
	if err == nil || err.Kind != CrashBadAddress {
		t.Fatalf("wild load: err = %v, want bad-address crash", err)
	}
}

func TestPushPop(t *testing.T) {
	s := testState(t)
	push := findVariant(t, isa.OpPUSH, isa.W64, isa.KReg)
	pop := findVariant(t, isa.OpPOP, isa.W64, isa.KReg)
	sp0 := s.GPR[isa.RSP]
	s.GPR[isa.RBX] = 0xfeedface
	step1(t, s, isa.MakeInst(push, isa.RegOp(isa.RBX)))
	if s.GPR[isa.RSP] != sp0-8 {
		t.Fatalf("push must decrement RSP by 8")
	}
	step1(t, s, isa.MakeInst(pop, isa.RegOp(isa.RCX)))
	if s.GPR[isa.RCX] != 0xfeedface || s.GPR[isa.RSP] != sp0 {
		t.Fatalf("pop: rcx=%#x rsp=%#x", s.GPR[isa.RCX], s.GPR[isa.RSP])
	}
}

func TestPopEmptyStackCrashes(t *testing.T) {
	// Paper §V-B: "popping the empty stack" must produce a crashing
	// sequence, which the generator has to avoid by construction.
	s := testState(t)
	pop := findVariant(t, isa.OpPOP, isa.W64, isa.KReg)
	s.GPR[isa.RSP] = 0x20000 + 4096 // top of stack: nothing above
	prog := []isa.Inst{isa.MakeInst(pop, isa.RegOp(isa.RCX))}
	if err := s.Step(prog); err == nil || err.Kind != CrashBadAddress {
		t.Fatalf("pop above stack: err = %v, want bad-address", err)
	}
}

func TestBranchTakenNotTaken(t *testing.T) {
	s := testState(t)
	xorV := findVariant(t, isa.OpXOR, isa.W64, isa.KReg, isa.KReg)
	je := findVariantCond(t, isa.OpJcc, isa.CondE, isa.KImm)
	incV := findVariant(t, isa.OpINC, isa.W64, isa.KReg)
	prog := []isa.Inst{
		isa.MakeInst(xorV, isa.RegOp(isa.RAX), isa.RegOp(isa.RAX)), // ZF=1
		isa.MakeInst(je, isa.ImmOp(1)),                             // skip next
		isa.MakeInst(incV, isa.RegOp(isa.RBX)),
		isa.MakeInst(incV, isa.RegOp(isa.RCX)),
	}
	n, err := Run(prog, s, 100)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("retired %d instructions, want 3", n)
	}
	if s.GPR[isa.RBX] != 0 || s.GPR[isa.RCX] != 1 {
		t.Fatalf("branch skipped wrong instruction: rbx=%d rcx=%d", s.GPR[isa.RBX], s.GPR[isa.RCX])
	}
}

func TestBranchOutOfProgramCrashes(t *testing.T) {
	s := testState(t)
	jmp := findVariant(t, isa.OpJMP, isa.W32, isa.KImm)
	prog := []isa.Inst{isa.MakeInst(jmp, isa.ImmOp(1000))}
	_, err := Run(prog, s, 100)
	if err == nil || err.Kind != CrashBadBranch {
		t.Fatalf("wild jump: err = %v, want bad-branch", err)
	}
}

func TestInfiniteLoopHitsWatchdog(t *testing.T) {
	s := testState(t)
	jmp := findVariant(t, isa.OpJMP, isa.W32, isa.KImm)
	prog := []isa.Inst{isa.MakeInst(jmp, isa.ImmOp(-1))} // jump to self
	_, err := Run(prog, s, 1000)
	if err == nil || err.Kind != CrashWatchdog {
		t.Fatalf("infinite loop: err = %v, want watchdog", err)
	}
}

func TestPrivilegedCrashes(t *testing.T) {
	s := testState(t)
	hlt := isa.ByOp(isa.OpHLT)[0]
	prog := []isa.Inst{isa.MakeInst(hlt)}
	if err := s.Step(prog); err == nil || err.Kind != CrashPrivileged {
		t.Fatalf("hlt: err = %v, want privileged", err)
	}
}

func TestNondeterministicInstructionsVaryWithSalt(t *testing.T) {
	rd := isa.ByOp(isa.OpRDRAND)[0]
	prog := []isa.Inst{isa.MakeInst(rd, isa.RegOp(isa.RAX))}
	s1 := testState(t)
	s1.NondetSalt = 1
	s2 := testState(t)
	s2.NondetSalt = 2
	if _, err := Run(prog, s1, 10); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(prog, s2, 10); err != nil {
		t.Fatal(err)
	}
	if s1.GPR[isa.RAX] == s2.GPR[isa.RAX] {
		t.Fatal("rdrand must differ across salts")
	}
	if s1.Signature() == s2.Signature() {
		t.Fatal("signatures must differ when nondeterministic output differs")
	}
}

func TestSignatureDeterministic(t *testing.T) {
	rng := rand.New(rand.NewPCG(21, 22))
	var prog []isa.Inst
	add := findVariant(t, isa.OpADD, isa.W64, isa.KReg, isa.KReg)
	for i := 0; i < 50; i++ {
		prog = append(prog, isa.MakeInst(add, isa.RegOp(isa.Reg(rng.IntN(4))), isa.RegOp(isa.Reg(rng.IntN(4)))))
	}
	run := func() uint64 {
		s := testState(t)
		for i := range s.GPR {
			s.GPR[i] = uint64(i) * 0x0101010101010101
		}
		s.GPR[isa.RSP] = 0x21000
		if _, err := Run(prog, s, 1000); err != nil {
			t.Fatal(err)
		}
		return s.Signature()
	}
	if run() != run() {
		t.Fatal("identical runs must produce identical signatures")
	}
}

func TestSSEAddMul(t *testing.T) {
	s := testState(t)
	addsd := findVariant(t, isa.OpADDSD, isa.W64, isa.KXmm, isa.KXmm)
	mulsd := findVariant(t, isa.OpMULSD, isa.W64, isa.KXmm, isa.KXmm)
	s.XMM[0][0] = math.Float64bits(1.5)
	s.XMM[1][0] = math.Float64bits(2.25)
	step1(t, s, isa.MakeInst(addsd, isa.XmmOp(0), isa.XmmOp(1)))
	if f64(s.XMM[0][0]) != 3.75 {
		t.Errorf("addsd: %v", f64(s.XMM[0][0]))
	}
	step1(t, s, isa.MakeInst(mulsd, isa.XmmOp(0), isa.XmmOp(1)))
	if f64(s.XMM[0][0]) != 8.4375 {
		t.Errorf("mulsd: %v", f64(s.XMM[0][0]))
	}
}

func TestSSEPackedLanes(t *testing.T) {
	s := testState(t)
	addpd := findVariant(t, isa.OpADDPD, isa.W128, isa.KXmm, isa.KXmm)
	s.XMM[2] = [2]uint64{math.Float64bits(1), math.Float64bits(10)}
	s.XMM[3] = [2]uint64{math.Float64bits(2), math.Float64bits(20)}
	step1(t, s, isa.MakeInst(addpd, isa.XmmOp(2), isa.XmmOp(3)))
	if f64(s.XMM[2][0]) != 3 || f64(s.XMM[2][1]) != 30 {
		t.Errorf("addpd lanes: %v %v", f64(s.XMM[2][0]), f64(s.XMM[2][1]))
	}
}

func TestMovapdAlignmentCrash(t *testing.T) {
	s := testState(t)
	movapd := findVariant(t, isa.OpMOVAPD, isa.W128, isa.KXmm, isa.KMem)
	prog := []isa.Inst{isa.MakeInst(movapd, isa.XmmOp(0), isa.MemOp(isa.RSI, 4))}
	if err := s.Step(prog); err == nil || err.Kind != CrashMisaligned {
		t.Fatalf("misaligned movapd: err = %v, want misaligned", err)
	}
}

func TestUcomisdFlags(t *testing.T) {
	s := testState(t)
	uc := findVariant(t, isa.OpUCOMISD, isa.W64, isa.KXmm, isa.KXmm)
	cases := []struct {
		a, b float64
		want isa.Flags
	}{
		{1, 2, isa.CF},
		{2, 1, 0},
		{2, 2, isa.ZF},
		{math.NaN(), 1, isa.ZF | isa.PF | isa.CF},
	}
	for _, c := range cases {
		s.XMM[0][0] = math.Float64bits(c.a)
		s.XMM[1][0] = math.Float64bits(c.b)
		s.Flags = isa.AllFlags
		step1(t, s, isa.MakeInst(uc, isa.XmmOp(0), isa.XmmOp(1)))
		if s.Flags != c.want {
			t.Errorf("ucomisd(%v,%v) flags = %v, want %v", c.a, c.b, s.Flags, c.want)
		}
	}
}

func TestCvtRoundTrip(t *testing.T) {
	s := testState(t)
	si2sd := findVariant(t, isa.OpCVTSI2SD, isa.W64, isa.KXmm, isa.KReg)
	// cvtsi2sdq: the 64-bit-source variant.
	for _, id := range isa.ByOp(isa.OpCVTSI2SD) {
		v := isa.Lookup(id)
		if len(v.Ops) == 2 && v.Ops[1].Kind == isa.KReg && v.Ops[1].Width == isa.W64 {
			si2sd = id
		}
	}
	sd2si := findVariant(t, isa.OpCVTSD2SI, isa.W64, isa.KReg, isa.KXmm)
	n123 := uint64(123456)
	s.GPR[isa.RBX] = -n123
	step1(t, s, isa.MakeInst(si2sd, isa.XmmOp(0), isa.RegOp(isa.RBX)))
	step1(t, s, isa.MakeInst(sd2si, isa.RegOp(isa.RCX), isa.XmmOp(0)))
	if int64(s.GPR[isa.RCX]) != -123456 {
		t.Errorf("cvt round trip: %d", int64(s.GPR[isa.RCX]))
	}
}

func TestFUHooksEquivalentWhenNative(t *testing.T) {
	// Installing hooks that mirror native semantics must not change any
	// result (this validates the hook plumbing used by the gate-level
	// injection campaigns).
	rng := rand.New(rand.NewPCG(23, 24))
	hooks := &FUHooks{
		IntAdd: func(a, b uint64, cin bool) uint64 {
			s := a + b
			if cin {
				s++
			}
			return s
		},
		IntMul: func(a, b uint64) (uint64, uint64) {
			hi, lo := bits.Mul64(a, b)
			return lo, hi
		},
		FPAdd64: func(a, b uint64) uint64 {
			return math.Float64bits(math.Float64frombits(a) + math.Float64frombits(b))
		},
		FPMul64: func(a, b uint64) uint64 {
			return math.Float64bits(math.Float64frombits(a) * math.Float64frombits(b))
		},
	}
	ops := []isa.VariantID{
		findVariant(t, isa.OpADD, isa.W64, isa.KReg, isa.KReg),
		findVariant(t, isa.OpSUB, isa.W32, isa.KReg, isa.KReg),
		findVariant(t, isa.OpADC, isa.W16, isa.KReg, isa.KReg),
		findVariant(t, isa.OpIMULRR, isa.W64, isa.KReg, isa.KReg),
		findVariant(t, isa.OpADDSD, isa.W64, isa.KXmm, isa.KXmm),
		findVariant(t, isa.OpMULSD, isa.W64, isa.KXmm, isa.KXmm),
	}
	for trial := 0; trial < 2000; trial++ {
		var prog []isa.Inst
		for i := 0; i < 10; i++ {
			id := ops[rng.IntN(len(ops))]
			v := isa.Lookup(id)
			if v.Ops[0].Kind == isa.KXmm {
				prog = append(prog, isa.MakeInst(id, isa.XmmOp(isa.XReg(rng.IntN(4))), isa.XmmOp(isa.XReg(rng.IntN(4)))))
			} else {
				prog = append(prog, isa.MakeInst(id, isa.RegOp(isa.Reg(rng.IntN(4))), isa.RegOp(isa.Reg(rng.IntN(4)))))
			}
		}
		mk := func(fu *FUHooks) uint64 {
			s := testState(t)
			s.FU = fu
			for i := 0; i < 4; i++ {
				s.GPR[i] = rng.Uint64() // same values via identical rng? no!
			}
			return 0
		}
		_ = mk
		// Build identical initial values explicitly.
		init := make([]uint64, 8)
		for i := range init {
			init[i] = rng.Uint64()
		}
		run := func(fu *FUHooks) uint64 {
			s := testState(t)
			s.FU = fu
			for i := 0; i < 4; i++ {
				s.GPR[i] = init[i]
				s.XMM[i][0] = init[4+i]
			}
			s.GPR[isa.RSP] = 0x21000
			if _, err := Run(prog, s, 1000); err != nil {
				t.Fatalf("%v", err)
			}
			return s.Signature()
		}
		if run(nil) != run(hooks) {
			t.Fatal("native-equivalent hooks changed program output")
		}
	}
}

func TestCloneIsolation(t *testing.T) {
	s := testState(t)
	s.GPR[isa.RAX] = 7
	c := s.Clone()
	c.GPR[isa.RAX] = 9
	c.Mem.Regions()[0].Data[0] = 0xff
	if s.GPR[isa.RAX] != 7 {
		t.Fatal("clone shares GPRs")
	}
	if s.Mem.Regions()[0].Data[0] != 0 {
		t.Fatal("clone shares memory")
	}
}

func TestRegionOverlapRejected(t *testing.T) {
	m := NewMemory()
	if err := m.AddRegion(&Region{Name: "a", Base: 0x1000, Data: make([]byte, 0x1000)}); err != nil {
		t.Fatal(err)
	}
	if err := m.AddRegion(&Region{Name: "b", Base: 0x1800, Data: make([]byte, 0x1000)}); err == nil {
		t.Fatal("overlapping region accepted")
	}
}

func TestCmovWritesRegardless(t *testing.T) {
	s := testState(t)
	cmove := findVariantCond(t, isa.OpCMOVcc, isa.CondE, isa.KReg, isa.KReg)
	// 32-bit cmov with false condition must still zero-extend dst.
	var id isa.VariantID
	for _, vid := range isa.ByOp(isa.OpCMOVcc) {
		v := isa.Lookup(vid)
		if v.Cond == isa.CondE && v.Width == isa.W32 && v.Ops[1].Kind == isa.KReg {
			id = vid
		}
	}
	_ = cmove
	s.GPR[isa.RAX] = 0xffffffff00000001
	s.GPR[isa.RBX] = 5
	s.Flags = 0 // ZF clear: condition false
	step1(t, s, isa.MakeInst(id, isa.RegOp(isa.RAX), isa.RegOp(isa.RBX)))
	if s.GPR[isa.RAX] != 1 {
		t.Errorf("cmov false must still zero-extend: %#x", s.GPR[isa.RAX])
	}
}

func TestXchgSwaps(t *testing.T) {
	s := testState(t)
	xchg := findVariant(t, isa.OpXCHG, isa.W64, isa.KReg, isa.KReg)
	s.GPR[isa.RAX], s.GPR[isa.RBX] = 1, 2
	step1(t, s, isa.MakeInst(xchg, isa.RegOp(isa.RAX), isa.RegOp(isa.RBX)))
	if s.GPR[isa.RAX] != 2 || s.GPR[isa.RBX] != 1 {
		t.Fatal("xchg failed")
	}
}

func TestBitScan(t *testing.T) {
	s := testState(t)
	bsf := findVariant(t, isa.OpBSF, isa.W64, isa.KReg, isa.KReg)
	bsr := findVariant(t, isa.OpBSR, isa.W64, isa.KReg, isa.KReg)
	popcnt := findVariant(t, isa.OpPOPCNT, isa.W64, isa.KReg, isa.KReg)
	s.GPR[isa.RBX] = 0x00f0
	step1(t, s, isa.MakeInst(bsf, isa.RegOp(isa.RAX), isa.RegOp(isa.RBX)))
	if s.GPR[isa.RAX] != 4 {
		t.Errorf("bsf: %d", s.GPR[isa.RAX])
	}
	step1(t, s, isa.MakeInst(bsr, isa.RegOp(isa.RAX), isa.RegOp(isa.RBX)))
	if s.GPR[isa.RAX] != 7 {
		t.Errorf("bsr: %d", s.GPR[isa.RAX])
	}
	step1(t, s, isa.MakeInst(popcnt, isa.RegOp(isa.RAX), isa.RegOp(isa.RBX)))
	if s.GPR[isa.RAX] != 4 {
		t.Errorf("popcnt: %d", s.GPR[isa.RAX])
	}
}

func TestMovzxMovsx(t *testing.T) {
	s := testState(t)
	var movzx, movsx isa.VariantID
	for _, id := range isa.ByOp(isa.OpMOVZX) {
		v := isa.Lookup(id)
		if v.Width == isa.W64 && v.Ops[1].Width == isa.W8 && v.Ops[1].Kind == isa.KReg {
			movzx = id
		}
	}
	for _, id := range isa.ByOp(isa.OpMOVSX) {
		v := isa.Lookup(id)
		if v.Width == isa.W64 && v.Ops[1].Width == isa.W8 && v.Ops[1].Kind == isa.KReg {
			movsx = id
		}
	}
	s.GPR[isa.RBX] = 0x80
	step1(t, s, isa.MakeInst(movzx, isa.RegOp(isa.RAX), isa.RegOp(isa.RBX)))
	if s.GPR[isa.RAX] != 0x80 {
		t.Errorf("movzx: %#x", s.GPR[isa.RAX])
	}
	step1(t, s, isa.MakeInst(movsx, isa.RegOp(isa.RAX), isa.RegOp(isa.RBX)))
	if s.GPR[isa.RAX] != 0xffffffffffffff80 {
		t.Errorf("movsx: %#x", s.GPR[isa.RAX])
	}
}

// rescanDigest rebuilds m's regions in a fresh Memory (fresh memories
// have no cached digest) and returns the from-scratch digest — the
// reference the incrementally maintained one must always equal.
func rescanDigest(t *testing.T, m *Memory) uint64 {
	t.Helper()
	f := NewMemory()
	for _, r := range m.Regions() {
		data := append([]byte(nil), r.Data...)
		if err := f.AddRegion(&Region{Name: r.Name, Base: r.Base, Data: data, Writable: r.Writable}); err != nil {
			t.Fatal(err)
		}
	}
	return f.Digest()
}

// The incremental memory digest must stay equal to a from-scratch scan
// through arbitrary interleavings of Write, Write128 and WriteBytes —
// including sub-word writes, word-straddling spans and the unaligned
// region tail — and must ignore read-only regions and survive cloning.
func TestMemoryDigestIncremental(t *testing.T) {
	rng := rand.New(rand.NewPCG(31, 32))
	m := NewMemory()
	// 1003-byte writable region: exercises the zero-padded tail word.
	odd := make([]byte, 1003)
	for i := range odd {
		odd[i] = byte(rng.Uint32())
	}
	if err := m.AddRegion(&Region{Name: "odd", Base: 0x1000, Data: odd, Writable: true}); err != nil {
		t.Fatal(err)
	}
	if err := m.AddRegion(&Region{Name: "data", Base: 0x10000, Data: make([]byte, 4096), Writable: true}); err != nil {
		t.Fatal(err)
	}
	if err := m.AddRegion(&Region{Name: "ro", Base: 0x20000, Data: make([]byte, 256)}); err != nil {
		t.Fatal(err)
	}
	if got, want := m.Digest(), rescanDigest(t, m); got != want {
		t.Fatalf("initial digest %#x != from-scratch %#x", got, want)
	}
	regions := []struct {
		base, size uint64
	}{{0x1000, 1003}, {0x10000, 4096}}
	for step := 0; step < 500; step++ {
		reg := regions[rng.IntN(len(regions))]
		switch rng.IntN(3) {
		case 0:
			size := uint64(1 + rng.IntN(8))
			addr := reg.base + uint64(rng.Int64N(int64(reg.size-size+1)))
			if err := m.Write(addr, size, rng.Uint64()); err != nil {
				t.Fatal(err)
			}
		case 1:
			if reg.size < 16 {
				continue
			}
			addr := reg.base + uint64(rng.Int64N(int64(reg.size-15)))
			if err := m.Write128(addr, [2]uint64{rng.Uint64(), rng.Uint64()}); err != nil {
				t.Fatal(err)
			}
		case 2:
			n := 1 + rng.IntN(64)
			if uint64(n) > reg.size {
				n = int(reg.size)
			}
			addr := reg.base + uint64(rng.Int64N(int64(reg.size-uint64(n)+1)))
			buf := make([]byte, n)
			for i := range buf {
				buf[i] = byte(rng.Uint32())
			}
			if err := m.WriteBytes(addr, buf); err != nil {
				t.Fatal(err)
			}
		}
	}
	if got, want := m.Digest(), rescanDigest(t, m); got != want {
		t.Fatalf("incremental digest %#x != from-scratch %#x after random writes", got, want)
	}
	// Clones carry the digest; divergent writes diverge it.
	c := m.Clone()
	if c.Digest() != m.Digest() {
		t.Fatal("clone digest differs from source")
	}
	if err := c.Write(0x10010, 8, 0xdeadbeef); err != nil {
		t.Fatal(err)
	}
	if c.Digest() == m.Digest() {
		t.Fatal("clone write did not change its digest")
	}
	if got, want := c.Digest(), rescanDigest(t, c); got != want {
		t.Fatalf("clone incremental digest %#x != from-scratch %#x", got, want)
	}
	if got, want := m.Digest(), rescanDigest(t, m); got != want {
		t.Fatalf("source digest changed by clone write: %#x != %#x", got, want)
	}
}
