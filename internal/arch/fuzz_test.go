package arch

import (
	"testing"

	"harpocrates/internal/isa"
)

// FuzzExecute runs arbitrary decoded byte programs on the emulator: no
// input may panic or corrupt the crash taxonomy (every run ends clean,
// with a classified crash, or at the step bound).
func FuzzExecute(f *testing.F) {
	f.Add([]byte{0x01, 0x00, 0x00, 0x01, 0x02})
	f.Add([]byte{0x10, 0x03, 0x00, 0x00, 0x00, 0x00, 0x00})
	f.Fuzz(func(t *testing.T, data []byte) {
		insts, _ := isa.DecodeAll(data)
		if len(insts) == 0 {
			return
		}
		mem := NewMemory()
		if err := mem.AddRegion(&Region{Name: "data", Base: 0x10000, Data: make([]byte, 4096), Writable: true}); err != nil {
			t.Fatal(err)
		}
		s := NewState(mem)
		s.GPR[isa.RSP] = 0x10000 + 2048
		s.GPR[isa.R14] = 0x10000
		n, cerr := Run(insts, s, 2048)
		if n < 0 {
			t.Fatal("negative step count")
		}
		if cerr != nil && cerr.Kind == CrashNone {
			t.Fatal("crash with no kind")
		}
	})
}
