package arch

import (
	"math"
	"math/bits"

	"harpocrates/internal/isa"
)

// execExt implements the extended instruction families (isa/table2.go).
// It is called from the main dispatch's default arm.
func (s *State) execExt(in *isa.Inst, v *isa.Variant) (bool, *CrashError) {
	w := v.Width
	switch v.Op {
	case isa.OpSHLD, isa.OpSHRD:
		a, err := s.readOp(&in.Ops[0], w)
		if err != nil {
			return true, err
		}
		b, err := s.readOp(&in.Ops[1], w)
		if err != nil {
			return true, err
		}
		nbits := uint64(w.Bits())
		n := uint64(in.Ops[2].Imm)
		if w == isa.W64 {
			n &= 63
		} else {
			n &= 31
		}
		n %= nbits // keep within the double-shift window
		if n == 0 {
			return true, nil
		}
		var res uint64
		var outBit bool
		if v.Op == isa.OpSHLD {
			res = (a<<n | b>>(nbits-n)) & w.Mask()
			outBit = (a>>(nbits-n))&1 != 0
		} else {
			res = (a>>n | b<<(nbits-n)) & w.Mask()
			outBit = (a>>(n-1))&1 != 0
		}
		s.setBool(isa.CF, outBit)
		s.setBool(isa.OF, (res&w.SignBit() != 0) != (a&w.SignBit() != 0))
		s.setZSP(res, w)
		return true, s.writeOp(&in.Ops[0], w, res)

	case isa.OpANDN, isa.OpBEXTR, isa.OpBLSI, isa.OpBLSR, isa.OpBLSMSK,
		isa.OpRORX, isa.OpSHLX, isa.OpSHRX, isa.OpSARX, isa.OpBZHI:
		return true, s.execBMI(in, v)

	case isa.OpXADD:
		a, err := s.readOp(&in.Ops[0], w)
		if err != nil {
			return true, err
		}
		b, err := s.readOp(&in.Ops[1], w)
		if err != nil {
			return true, err
		}
		sum, cf, of := s.addCore(a, b, false, w)
		s.setBool(isa.CF, cf)
		s.setBool(isa.OF, of)
		s.setZSP(sum, w)
		if err := s.writeOp(&in.Ops[1], w, a); err != nil {
			return true, err
		}
		return true, s.writeOp(&in.Ops[0], w, sum)

	case isa.OpMOVBE:
		b, err := s.readOp(&in.Ops[1], w)
		if err != nil {
			return true, err
		}
		var res uint64
		switch w {
		case isa.W16:
			res = uint64(bits.ReverseBytes16(uint16(b)))
		case isa.W32:
			res = uint64(bits.ReverseBytes32(uint32(b)))
		default:
			res = bits.ReverseBytes64(b)
		}
		return true, s.writeOp(&in.Ops[0], w, res)

	case isa.OpCMPXCHG:
		dst, err := s.readOp(&in.Ops[0], w)
		if err != nil {
			return true, err
		}
		src, err := s.readOp(&in.Ops[1], w)
		if err != nil {
			return true, err
		}
		acc := s.ReadGPR(isa.RAX, w)
		_, cf, of := s.subCore(acc, dst, false, w)
		s.setBool(isa.CF, cf)
		s.setBool(isa.OF, of)
		s.setZSP(acc-dst, w)
		if acc == dst {
			s.Flags |= isa.ZF
			return true, s.writeOp(&in.Ops[0], w, src)
		}
		s.Flags &^= isa.ZF
		s.WriteGPR(isa.RAX, w, dst)
		return true, nil

	case isa.OpADCX, isa.OpADOX:
		a, err := s.readOp(&in.Ops[0], w)
		if err != nil {
			return true, err
		}
		b, err := s.readOp(&in.Ops[1], w)
		if err != nil {
			return true, err
		}
		flag := isa.CF
		if v.Op == isa.OpADOX {
			flag = isa.OF
		}
		res, carry, _ := s.addCore(a, b, s.Flags&flag != 0, w)
		s.setBool(flag, carry)
		return true, s.writeOp(&in.Ops[0], w, res)

	case isa.OpCSEX:
		half := w / 2
		s.WriteGPR(isa.RAX, w, signExtend(s.ReadGPR(isa.RAX, half), half))
		return true, nil

	case isa.OpCSPLIT:
		var fill uint64
		if s.ReadGPR(isa.RAX, w)&w.SignBit() != 0 {
			fill = w.Mask()
		}
		s.WriteGPR(isa.RDX, w, fill)
		return true, nil

	case isa.OpLAHF:
		s.WriteGPR(isa.RAX, isa.W16, s.ReadGPR(isa.RAX, isa.W8)|uint64(s.Flags)<<8)
		return true, nil

	case isa.OpSAHF:
		ah := isa.Flags(s.GPR[isa.RAX] >> 8)
		keep := s.Flags & isa.OF
		s.Flags = ah&(isa.CF|isa.PF|isa.ZF|isa.SF) | keep
		return true, nil

	case isa.OpCLC:
		s.Flags &^= isa.CF
		return true, nil
	case isa.OpSTC:
		s.Flags |= isa.CF
		return true, nil
	case isa.OpCMC:
		s.Flags ^= isa.CF
		return true, nil

	case isa.OpADDPS, isa.OpSUBPS, isa.OpMULPS, isa.OpDIVPS, isa.OpMINPS, isa.OpMAXPS:
		return true, s.execPS(in, v)

	case isa.OpMINSS, isa.OpMAXSS, isa.OpSQRTSS:
		src, err := s.readX(&in.Ops[1], isa.W32)
		if err != nil {
			return true, err
		}
		x := in.Ops[0].X
		a := f32(s.XMM[x][0])
		b := math.Float32frombits(uint32(src[0]))
		var r float32
		switch v.Op {
		case isa.OpMINSS:
			r = b
			if a < b {
				r = a
			}
		case isa.OpMAXSS:
			r = b
			if a > b {
				r = a
			}
		case isa.OpSQRTSS:
			r = float32(math.Sqrt(float64(b)))
		}
		s.XMM[x][0] = s.XMM[x][0]&^0xffffffff | b32l(r)
		return true, nil

	case isa.OpANDPD, isa.OpANDNPD, isa.OpORPD, isa.OpXORPD:
		src, err := s.readX(&in.Ops[1], isa.W128)
		if err != nil {
			return true, err
		}
		x := in.Ops[0].X
		for lane := 0; lane < 2; lane++ {
			a, b := s.XMM[x][lane], src[lane]
			switch v.Op {
			case isa.OpANDPD:
				s.XMM[x][lane] = a & b
			case isa.OpANDNPD:
				s.XMM[x][lane] = ^a & b
			case isa.OpORPD:
				s.XMM[x][lane] = a | b
			case isa.OpXORPD:
				s.XMM[x][lane] = a ^ b
			}
		}
		return true, nil

	case isa.OpPSLLQ, isa.OpPSRLQ, isa.OpPSLLD, isa.OpPSRLD:
		x := in.Ops[0].X
		n := uint(in.Ops[1].Imm) & 0xff
		for lane := 0; lane < 2; lane++ {
			a := s.XMM[x][lane]
			switch v.Op {
			case isa.OpPSLLQ:
				if n >= 64 {
					a = 0
				} else {
					a <<= n
				}
			case isa.OpPSRLQ:
				if n >= 64 {
					a = 0
				} else {
					a >>= n
				}
			case isa.OpPSLLD:
				if n >= 32 {
					a = 0
				} else {
					a = (a << n & 0xffffffff) | (a >> 32 << n & 0xffffffff << 32)
				}
			case isa.OpPSRLD:
				if n >= 32 {
					a = 0
				} else {
					a = (a & 0xffffffff >> n) | (a >> 32 >> n << 32)
				}
			}
			s.XMM[x][lane] = a
		}
		return true, nil

	case isa.OpPSUBD, isa.OpPMULUDQ, isa.OpPCMPEQD, isa.OpPCMPEQQ, isa.OpPCMPGTD:
		src, err := s.readX(&in.Ops[1], isa.W128)
		if err != nil {
			return true, err
		}
		x := in.Ops[0].X
		for lane := 0; lane < 2; lane++ {
			a, b := s.XMM[x][lane], src[lane]
			switch v.Op {
			case isa.OpPSUBD:
				s.XMM[x][lane] = (a-b)&0xffffffff | (a>>32-b>>32)<<32
			case isa.OpPMULUDQ:
				// Low 32-bit lanes multiplied into full 64-bit products.
				s.XMM[x][lane] = (a & 0xffffffff) * (b & 0xffffffff)
			case isa.OpPCMPEQD:
				var r uint64
				if uint32(a) == uint32(b) {
					r = 0xffffffff
				}
				if uint32(a>>32) == uint32(b>>32) {
					r |= 0xffffffff << 32
				}
				s.XMM[x][lane] = r
			case isa.OpPCMPEQQ:
				if a == b {
					s.XMM[x][lane] = ^uint64(0)
				} else {
					s.XMM[x][lane] = 0
				}
			case isa.OpPCMPGTD:
				var r uint64
				if int32(a) > int32(b) {
					r = 0xffffffff
				}
				if int32(a>>32) > int32(b>>32) {
					r |= 0xffffffff << 32
				}
				s.XMM[x][lane] = r
			}
		}
		return true, nil

	case isa.OpPSHUFD:
		src, err := s.readX(&in.Ops[1], isa.W128)
		if err != nil {
			return true, err
		}
		imm := uint(in.Ops[2].Imm)
		dw := func(i uint) uint64 {
			sel := imm >> (2 * i) & 3
			return src[sel/2] >> (32 * (sel % 2)) & 0xffffffff
		}
		s.XMM[in.Ops[0].X] = [2]uint64{dw(0) | dw(1)<<32, dw(2) | dw(3)<<32}
		return true, nil

	case isa.OpCVTSI2SS:
		srcW := v.Ops[1].Width
		a, err := s.readOp(&in.Ops[1], srcW)
		if err != nil {
			return true, err
		}
		x := in.Ops[0].X
		s.XMM[x][0] = s.XMM[x][0]&^0xffffffff | b32l(float32(int64(signExtend(a, srcW))))
		return true, nil

	case isa.OpCVTSS2SI, isa.OpCVTTSS2SI:
		f := float64(f32(s.XMM[in.Ops[1].X][0]))
		var g float64
		if v.Op == isa.OpCVTSS2SI {
			g = math.RoundToEven(f)
		} else {
			g = math.Trunc(f)
		}
		limit := math.Ldexp(1, w.Bits()-1)
		var res uint64
		if math.IsNaN(g) || g >= limit || g < -limit {
			res = uint64(1) << (uint(w.Bits()) - 1)
		} else {
			res = uint64(int64(g))
		}
		s.WriteGPR(in.Ops[0].Reg, w, res)
		return true, nil

	case isa.OpCVTPS2PD:
		src := s.XMM[in.Ops[1].X][0]
		s.XMM[in.Ops[0].X] = [2]uint64{
			b64(float64(math.Float32frombits(uint32(src)))),
			b64(float64(math.Float32frombits(uint32(src >> 32)))),
		}
		return true, nil

	case isa.OpCVTPD2PS:
		src := s.XMM[in.Ops[1].X]
		lo := uint64(math.Float32bits(float32(f64(src[0]))))
		hi := uint64(math.Float32bits(float32(f64(src[1]))))
		s.XMM[in.Ops[0].X] = [2]uint64{lo | hi<<32, 0}
		return true, nil

	case isa.OpUCOMISS:
		src, err := s.readX(&in.Ops[1], isa.W32)
		if err != nil {
			return true, err
		}
		a := f32(s.XMM[in.Ops[0].X][0])
		b := math.Float32frombits(uint32(src[0]))
		s.Flags &^= isa.AllFlags
		switch {
		case a != a || b != b: // NaN
			s.Flags |= isa.ZF | isa.PF | isa.CF
		case a < b:
			s.Flags |= isa.CF
		case a == b:
			s.Flags |= isa.ZF
		}
		return true, nil

	case isa.OpMOVMSKPD:
		x := s.XMM[in.Ops[1].X]
		s.GPR[in.Ops[0].Reg] = x[0]>>63 | x[1]>>63<<1
		return true, nil

	case isa.OpMOVMSKPS:
		x := s.XMM[in.Ops[1].X]
		var m uint64
		for i := 0; i < 4; i++ {
			if x[i/2]>>(32*uint(i%2)+31)&1 != 0 {
				m |= 1 << uint(i)
			}
		}
		s.GPR[in.Ops[0].Reg] = m
		return true, nil

	case isa.OpPMOVMSKB:
		x := s.XMM[in.Ops[1].X]
		var m uint64
		for i := 0; i < 16; i++ {
			if x[i/8]>>(8*uint(i%8)+7)&1 != 0 {
				m |= 1 << uint(i)
			}
		}
		s.GPR[in.Ops[0].Reg] = m
		return true, nil

	case isa.OpMOVD:
		if in.Ops[0].Kind == isa.KXmm {
			s.XMM[in.Ops[0].X] = [2]uint64{s.ReadGPR(in.Ops[1].Reg, isa.W32), 0}
		} else {
			s.WriteGPR(in.Ops[0].Reg, isa.W32, s.XMM[in.Ops[1].X][0]&0xffffffff)
		}
		return true, nil

	case isa.OpMOVSS:
		switch {
		case in.Ops[0].Kind == isa.KXmm && in.Ops[1].Kind == isa.KXmm:
			x := in.Ops[0].X
			s.XMM[x][0] = s.XMM[x][0]&^0xffffffff | s.XMM[in.Ops[1].X][0]&0xffffffff
		case in.Ops[0].Kind == isa.KXmm:
			src, err := s.readX(&in.Ops[1], isa.W32)
			if err != nil {
				return true, err
			}
			s.XMM[in.Ops[0].X] = [2]uint64{src[0] & 0xffffffff, 0}
		default:
			return true, s.writeX(&in.Ops[0], isa.W32, [2]uint64{s.XMM[in.Ops[1].X][0] & 0xffffffff, 0})
		}
		return true, nil

	case isa.OpMOVUPD:
		// Unaligned 128-bit move: bypass the movapd alignment check.
		if in.Ops[0].Kind == isa.KXmm {
			val, err := s.Mem.Read128(s.EffAddr(in.Ops[1].Mem))
			if err != nil {
				return true, err
			}
			s.XMM[in.Ops[0].X] = val
		} else {
			return true, s.Mem.Write128(s.EffAddr(in.Ops[0].Mem), s.XMM[in.Ops[1].X])
		}
		return true, nil
	}
	return false, nil
}

func (s *State) execBMI(in *isa.Inst, v *isa.Variant) *CrashError {
	w := v.Width
	nbits := uint64(w.Bits())
	b, err := s.readOp(&in.Ops[1], w)
	if err != nil {
		return err
	}
	var res uint64
	switch v.Op {
	case isa.OpANDN:
		c, err := s.readOp(&in.Ops[2], w)
		if err != nil {
			return err
		}
		res = ^b & c & w.Mask()
		s.setLogicFlags(res, w)
	case isa.OpBEXTR:
		c, err := s.readOp(&in.Ops[2], w)
		if err != nil {
			return err
		}
		start := c & 0xff
		length := c >> 8 & 0xff
		if start >= nbits {
			res = 0
		} else {
			res = b >> start
			if length < 64 {
				res &= 1<<length - 1
			}
			res &= w.Mask()
		}
		s.setLogicFlags(res, w)
	case isa.OpBLSI:
		res = b & -b & w.Mask()
		s.setBool(isa.CF, b != 0)
		s.setZSP(res, w)
		s.Flags &^= isa.OF
	case isa.OpBLSR:
		res = b & (b - 1) & w.Mask()
		s.setBool(isa.CF, b == 0)
		s.setZSP(res, w)
		s.Flags &^= isa.OF
	case isa.OpBLSMSK:
		res = (b ^ (b - 1)) & w.Mask()
		s.setBool(isa.CF, b == 0)
		s.setZSP(res, w)
		s.Flags &^= isa.OF
	case isa.OpRORX:
		n := uint64(in.Ops[2].Imm) % nbits
		if n != 0 {
			res = (b>>n | b<<(nbits-n)) & w.Mask()
		} else {
			res = b
		}
	case isa.OpSHLX, isa.OpSHRX, isa.OpSARX:
		c, err := s.readOp(&in.Ops[2], w)
		if err != nil {
			return err
		}
		n := c & (nbits - 1)
		switch v.Op {
		case isa.OpSHLX:
			res = b << n & w.Mask()
		case isa.OpSHRX:
			res = b >> n
		default:
			res = uint64(int64(signExtend(b, w))>>n) & w.Mask()
		}
	case isa.OpBZHI:
		c, err := s.readOp(&in.Ops[2], w)
		if err != nil {
			return err
		}
		idx := c & 0xff
		res = b
		sat := idx >= nbits
		if !sat {
			res = b & (1<<idx - 1)
		}
		s.setBool(isa.CF, sat)
		s.setZSP(res, w)
		s.Flags &^= isa.OF
	}
	s.WriteGPR(in.Ops[0].Reg, w, res)
	return nil
}

// execPS applies packed-single (4 x float32) arithmetic.
func (s *State) execPS(in *isa.Inst, v *isa.Variant) *CrashError {
	src, err := s.readX(&in.Ops[1], isa.W128)
	if err != nil {
		return err
	}
	x := in.Ops[0].X
	for lane := 0; lane < 2; lane++ {
		for half := uint(0); half < 2; half++ {
			sh := 32 * half
			a := math.Float32frombits(uint32(s.XMM[x][lane] >> sh))
			b := math.Float32frombits(uint32(src[lane] >> sh))
			var r float32
			switch v.Op {
			case isa.OpADDPS:
				r = a + b
			case isa.OpSUBPS:
				r = a - b
			case isa.OpMULPS:
				r = a * b
			case isa.OpDIVPS:
				r = a / b
			case isa.OpMINPS:
				r = b
				if a < b {
					r = a
				}
			case isa.OpMAXPS:
				r = b
				if a > b {
					r = a
				}
			}
			s.XMM[x][lane] = s.XMM[x][lane]&^(uint64(0xffffffff)<<sh) | uint64(math.Float32bits(r))<<sh
		}
	}
	return nil
}
