// Package arch implements the architectural state and full functional
// semantics of the HX86 ISA: general-purpose and vector register files,
// status flags, a region-based memory model with access checking, and an
// executor used both for golden (fault-free) reference runs and as the
// execute-stage semantics of the out-of-order core model.
//
// Faulty behaviour enters through two channels: direct state corruption
// (the injector flips bits in registers, memory or cache lines between
// steps) and functional-unit hooks (FUHooks) that reroute arithmetic
// through gate-level netlists, possibly carrying a stuck-at fault.
package arch

import (
	"fmt"
	"sort"
)

// Region is a contiguous chunk of the guest address space.
type Region struct {
	Name     string
	Base     uint64
	Data     []byte
	Writable bool
}

// End returns the first address past the region.
func (r *Region) End() uint64 { return r.Base + uint64(len(r.Data)) }

// Contains reports whether [addr, addr+size) falls inside the region.
func (r *Region) Contains(addr, size uint64) bool {
	return addr >= r.Base && size <= uint64(len(r.Data)) && addr-r.Base <= uint64(len(r.Data))-size
}

// MemBus is the memory seen by the executor. The functional emulator
// binds it to a plain *Memory; the out-of-order core model binds it to a
// bus that routes loads through the L1D cache and store-to-load
// forwarding, and captures stores into the store queue.
type MemBus interface {
	Read(addr, size uint64) (uint64, *CrashError)
	Write(addr, size, val uint64) *CrashError
	Read128(addr uint64) ([2]uint64, *CrashError)
	Write128(addr uint64, v [2]uint64) *CrashError
	// Regions exposes the underlying address map (for signatures and
	// bounds introspection).
	Regions() []*Region
}

// Memory is a sparse, region-based guest memory. Accesses outside every
// region fault, which is the main source of crashes for random byte
// programs (the SiliFuzz baseline) and for fault-corrupted pointers.
type Memory struct {
	regions []*Region // sorted by Base
}

var _ MemBus = (*Memory)(nil)

// NewMemory returns an empty memory.
func NewMemory() *Memory { return &Memory{} }

// AddRegion registers a region. Regions must not overlap.
func (m *Memory) AddRegion(r *Region) error {
	for _, o := range m.regions {
		if r.Base < o.End() && o.Base < r.End() {
			return fmt.Errorf("arch: region %q [%#x,%#x) overlaps %q [%#x,%#x)",
				r.Name, r.Base, r.End(), o.Name, o.Base, o.End())
		}
	}
	m.regions = append(m.regions, r)
	sort.Slice(m.regions, func(i, j int) bool { return m.regions[i].Base < m.regions[j].Base })
	return nil
}

// Regions returns the regions in address order. The slice must not be
// modified.
func (m *Memory) Regions() []*Region { return m.regions }

// Region returns the named region, or nil.
func (m *Memory) Region(name string) *Region {
	for _, r := range m.regions {
		if r.Name == name {
			return r
		}
	}
	return nil
}

// find locates the region containing [addr, addr+size).
func (m *Memory) find(addr, size uint64) *Region {
	// Linear scan: programs have 2-3 regions.
	for _, r := range m.regions {
		if r.Contains(addr, size) {
			return r
		}
	}
	return nil
}

// Read reads size bytes (1..8) as a little-endian integer.
func (m *Memory) Read(addr, size uint64) (uint64, *CrashError) {
	r := m.find(addr, size)
	if r == nil {
		return 0, &CrashError{Kind: CrashBadAddress, Addr: addr}
	}
	off := addr - r.Base
	var v uint64
	for i := uint64(0); i < size; i++ {
		v |= uint64(r.Data[off+i]) << (8 * i)
	}
	return v, nil
}

// Write writes size bytes (1..8) little-endian.
func (m *Memory) Write(addr, size, val uint64) *CrashError {
	r := m.find(addr, size)
	if r == nil || !r.Writable {
		return &CrashError{Kind: CrashBadAddress, Addr: addr}
	}
	off := addr - r.Base
	for i := uint64(0); i < size; i++ {
		r.Data[off+i] = byte(val >> (8 * i))
	}
	return nil
}

// Read128 reads a 16-byte value as two little-endian 64-bit lanes.
func (m *Memory) Read128(addr uint64) ([2]uint64, *CrashError) {
	lo, err := m.Read(addr, 8)
	if err != nil {
		return [2]uint64{}, err
	}
	hi, err := m.Read(addr+8, 8)
	if err != nil {
		return [2]uint64{}, err
	}
	return [2]uint64{lo, hi}, nil
}

// Write128 writes a 16-byte value as two little-endian 64-bit lanes.
func (m *Memory) Write128(addr uint64, v [2]uint64) *CrashError {
	if err := m.Write(addr, 8, v[0]); err != nil {
		return err
	}
	return m.Write(addr+8, 8, v[1])
}

// CheckWrite verifies that [addr, addr+size) is writable without writing.
func (m *Memory) CheckWrite(addr, size uint64) *CrashError {
	r := m.find(addr, size)
	if r == nil || !r.Writable {
		return &CrashError{Kind: CrashBadAddress, Addr: addr}
	}
	return nil
}

// ReadBytes copies [addr, addr+size) into dst (used for cache line
// fills).
func (m *Memory) ReadBytes(addr uint64, dst []byte) *CrashError {
	r := m.find(addr, uint64(len(dst)))
	if r == nil {
		return &CrashError{Kind: CrashBadAddress, Addr: addr}
	}
	copy(dst, r.Data[addr-r.Base:])
	return nil
}

// WriteBytes copies src to [addr, addr+len(src)) (cache line
// writebacks). Unlike Write it ignores the Writable flag: a dirty line
// can only exist for a region that accepted the original store.
func (m *Memory) WriteBytes(addr uint64, src []byte) *CrashError {
	r := m.find(addr, uint64(len(src)))
	if r == nil {
		return &CrashError{Kind: CrashBadAddress, Addr: addr}
	}
	copy(r.Data[addr-r.Base:], src)
	return nil
}

// Clone deep-copies the memory (used to snapshot initial state for
// repeated golden/faulty runs).
func (m *Memory) Clone() *Memory {
	return m.CloneInto(nil)
}

// CloneInto deep-copies the memory into dst, reusing dst's region
// buffers when the address maps match (the checkpoint-restore hot path:
// restoring into a pooled core must not reallocate megabytes of stack
// region per faulty run). A nil or mismatched dst gets fresh buffers.
func (m *Memory) CloneInto(dst *Memory) *Memory {
	if dst == nil || dst == m {
		dst = &Memory{}
	}
	if len(dst.regions) == len(m.regions) {
		same := true
		for i, r := range m.regions {
			d := dst.regions[i]
			if d.Base != r.Base || len(d.Data) != len(r.Data) || d.Name != r.Name || d.Writable != r.Writable {
				same = false
				break
			}
		}
		if same {
			for i, r := range m.regions {
				copy(dst.regions[i].Data, r.Data)
			}
			return dst
		}
	}
	dst.regions = make([]*Region, len(m.regions))
	for i, r := range m.regions {
		nr := &Region{Name: r.Name, Base: r.Base, Writable: r.Writable, Data: make([]byte, len(r.Data))}
		copy(nr.Data, r.Data)
		dst.regions[i] = nr
	}
	return dst
}
