// Package arch implements the architectural state and full functional
// semantics of the HX86 ISA: general-purpose and vector register files,
// status flags, a region-based memory model with access checking, and an
// executor used both for golden (fault-free) reference runs and as the
// execute-stage semantics of the out-of-order core model.
//
// Faulty behaviour enters through two channels: direct state corruption
// (the injector flips bits in registers, memory or cache lines between
// steps) and functional-unit hooks (FUHooks) that reroute arithmetic
// through gate-level netlists, possibly carrying a stuck-at fault.
package arch

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// Region is a contiguous chunk of the guest address space.
type Region struct {
	Name     string
	Base     uint64
	Data     []byte
	Writable bool
}

// End returns the first address past the region.
func (r *Region) End() uint64 { return r.Base + uint64(len(r.Data)) }

// Contains reports whether [addr, addr+size) falls inside the region.
func (r *Region) Contains(addr, size uint64) bool {
	return addr >= r.Base && size <= uint64(len(r.Data)) && addr-r.Base <= uint64(len(r.Data))-size
}

// MemBus is the memory seen by the executor. The functional emulator
// binds it to a plain *Memory; the out-of-order core model binds it to a
// bus that routes loads through the L1D cache and store-to-load
// forwarding, and captures stores into the store queue.
type MemBus interface {
	Read(addr, size uint64) (uint64, *CrashError)
	Write(addr, size, val uint64) *CrashError
	Read128(addr uint64) ([2]uint64, *CrashError)
	Write128(addr uint64, v [2]uint64) *CrashError
	// Regions exposes the underlying address map (for signatures and
	// bounds introspection).
	Regions() []*Region
}

// Memory is a sparse, region-based guest memory. Accesses outside every
// region fault, which is the main source of crashes for random byte
// programs (the SiliFuzz baseline) and for fault-corrupted pointers.
//
// Memory maintains an optional incremental content digest (see Digest):
// once initialized, every Write/WriteBytes keeps it current, so
// consumers that repeatedly digest the image — the output signature and
// delta resimulation's state hash — pay O(bytes written) instead of
// rescanning megabytes of region data.
type Memory struct {
	regions []*Region // sorted by Base
	// digest is the XOR over all writable-region words of
	// wordDigest(addr, word) — an order-independent multiset hash, which
	// is what makes it incrementally updatable: a write XORs out the old
	// words and XORs in the new ones. Valid only when digestOK; computed
	// lazily by Digest.
	digest   uint64
	digestOK bool
}

var _ MemBus = (*Memory)(nil)

// NewMemory returns an empty memory.
func NewMemory() *Memory { return &Memory{} }

// AddRegion registers a region. Regions must not overlap.
func (m *Memory) AddRegion(r *Region) error {
	for _, o := range m.regions {
		if r.Base < o.End() && o.Base < r.End() {
			return fmt.Errorf("arch: region %q [%#x,%#x) overlaps %q [%#x,%#x)",
				r.Name, r.Base, r.End(), o.Name, o.Base, o.End())
		}
	}
	m.regions = append(m.regions, r)
	sort.Slice(m.regions, func(i, j int) bool { return m.regions[i].Base < m.regions[j].Base })
	m.digestOK = false
	return nil
}

// Regions returns the regions in address order. The slice must not be
// modified.
func (m *Memory) Regions() []*Region { return m.regions }

// Region returns the named region, or nil.
func (m *Memory) Region(name string) *Region {
	for _, r := range m.regions {
		if r.Name == name {
			return r
		}
	}
	return nil
}

// find locates the region containing [addr, addr+size).
func (m *Memory) find(addr, size uint64) *Region {
	// Linear scan: programs have 2-3 regions.
	for _, r := range m.regions {
		if r.Contains(addr, size) {
			return r
		}
	}
	return nil
}

// Read reads size bytes (1..8) as a little-endian integer.
func (m *Memory) Read(addr, size uint64) (uint64, *CrashError) {
	r := m.find(addr, size)
	if r == nil {
		return 0, &CrashError{Kind: CrashBadAddress, Addr: addr}
	}
	off := addr - r.Base
	var v uint64
	for i := uint64(0); i < size; i++ {
		v |= uint64(r.Data[off+i]) << (8 * i)
	}
	return v, nil
}

// Write writes size bytes (1..8) little-endian.
func (m *Memory) Write(addr, size, val uint64) *CrashError {
	r := m.find(addr, size)
	if r == nil || !r.Writable {
		return &CrashError{Kind: CrashBadAddress, Addr: addr}
	}
	off := addr - r.Base
	if m.digestOK {
		m.digest ^= r.spanDigest(off, size)
	}
	for i := uint64(0); i < size; i++ {
		r.Data[off+i] = byte(val >> (8 * i))
	}
	if m.digestOK {
		m.digest ^= r.spanDigest(off, size)
	}
	return nil
}

// Read128 reads a 16-byte value as two little-endian 64-bit lanes.
func (m *Memory) Read128(addr uint64) ([2]uint64, *CrashError) {
	lo, err := m.Read(addr, 8)
	if err != nil {
		return [2]uint64{}, err
	}
	hi, err := m.Read(addr+8, 8)
	if err != nil {
		return [2]uint64{}, err
	}
	return [2]uint64{lo, hi}, nil
}

// Write128 writes a 16-byte value as two little-endian 64-bit lanes.
func (m *Memory) Write128(addr uint64, v [2]uint64) *CrashError {
	if err := m.Write(addr, 8, v[0]); err != nil {
		return err
	}
	return m.Write(addr+8, 8, v[1])
}

// CheckWrite verifies that [addr, addr+size) is writable without writing.
func (m *Memory) CheckWrite(addr, size uint64) *CrashError {
	r := m.find(addr, size)
	if r == nil || !r.Writable {
		return &CrashError{Kind: CrashBadAddress, Addr: addr}
	}
	return nil
}

// ReadBytes copies [addr, addr+size) into dst (used for cache line
// fills).
func (m *Memory) ReadBytes(addr uint64, dst []byte) *CrashError {
	r := m.find(addr, uint64(len(dst)))
	if r == nil {
		return &CrashError{Kind: CrashBadAddress, Addr: addr}
	}
	copy(dst, r.Data[addr-r.Base:])
	return nil
}

// WriteBytes copies src to [addr, addr+len(src)) (cache line
// writebacks). Unlike Write it ignores the Writable flag: a dirty line
// can only exist for a region that accepted the original store.
func (m *Memory) WriteBytes(addr uint64, src []byte) *CrashError {
	r := m.find(addr, uint64(len(src)))
	if r == nil {
		return &CrashError{Kind: CrashBadAddress, Addr: addr}
	}
	off := addr - r.Base
	if m.digestOK && r.Writable {
		m.digest ^= r.spanDigest(off, uint64(len(src)))
	}
	copy(r.Data[off:], src)
	if m.digestOK && r.Writable {
		m.digest ^= r.spanDigest(off, uint64(len(src)))
	}
	return nil
}

// wordDigest maps one aligned (address, 64-bit word) pair to a
// pseudo-random 64-bit value (a splitmix64-style finalizer). The memory
// digest is the XOR of these over all writable words, so each word's
// contribution must look independent of its neighbours'.
func wordDigest(addr, w uint64) uint64 {
	z := addr*0x9e3779b97f4a7c15 ^ w*0x94d049bb133111eb
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// spanDigest digests the aligned 8-byte words overlapping the byte span
// [off, off+size) of the region. A write updates the memory digest by
// XORing the affected span out before mutating and back in after; the
// full scan in Digest uses the same walk so both agree on how a
// region's unaligned tail is folded (zero-padded final word).
func (r *Region) spanDigest(off, size uint64) uint64 {
	start := off &^ 7
	end := min((off+size+7)&^7, uint64(len(r.Data)))
	var d uint64
	i := start
	for ; i+8 <= end; i += 8 {
		d ^= wordDigest(r.Base+i, binary.LittleEndian.Uint64(r.Data[i:]))
	}
	if i < end {
		var tail uint64
		for j := uint64(0); i+j < end; j++ {
			tail |= uint64(r.Data[i+j]) << (8 * j)
		}
		d ^= wordDigest(r.Base+i, tail)
	}
	return d
}

// Digest returns a 64-bit digest of the content of all writable regions
// (read-only regions cannot change and are excluded). The first call
// scans the image; afterwards every Write/WriteBytes maintains the
// digest incrementally, making repeated calls O(1). The digest is a
// deterministic function of the memory content alone — two memories with
// identical region layouts and bytes digest equal no matter how they got
// there — and it survives Clone/CloneInto.
//
// Callers that mutate Region.Data directly (bypassing Write/WriteBytes)
// must do so before the first Digest call; later direct mutation would
// silently desynchronize the digest.
func (m *Memory) Digest() uint64 {
	if !m.digestOK {
		var d uint64
		for _, r := range m.regions {
			if r.Writable {
				d ^= r.spanDigest(0, uint64(len(r.Data)))
			}
		}
		m.digest = d
		m.digestOK = true
	}
	return m.digest
}

// Clone deep-copies the memory (used to snapshot initial state for
// repeated golden/faulty runs).
func (m *Memory) Clone() *Memory {
	return m.CloneInto(nil)
}

// CloneInto deep-copies the memory into dst, reusing dst's region
// buffers when the address maps match (the checkpoint-restore hot path:
// restoring into a pooled core must not reallocate megabytes of stack
// region per faulty run). A nil or mismatched dst gets fresh buffers.
func (m *Memory) CloneInto(dst *Memory) *Memory {
	if dst == nil || dst == m {
		dst = &Memory{}
	}
	// The copy's bytes are the source's bytes, so its digest is too.
	dst.digest, dst.digestOK = m.digest, m.digestOK
	if len(dst.regions) == len(m.regions) {
		same := true
		for i, r := range m.regions {
			d := dst.regions[i]
			if d.Base != r.Base || len(d.Data) != len(r.Data) || d.Name != r.Name || d.Writable != r.Writable {
				same = false
				break
			}
		}
		if same {
			for i, r := range m.regions {
				copy(dst.regions[i].Data, r.Data)
			}
			return dst
		}
	}
	dst.regions = make([]*Region, len(m.regions))
	for i, r := range m.regions {
		nr := &Region{Name: r.Name, Base: r.Base, Writable: r.Writable, Data: make([]byte, len(r.Data))}
		copy(nr.Data, r.Data)
		dst.regions[i] = nr
	}
	return dst
}
