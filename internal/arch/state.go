package arch

import (
	"encoding/binary"
	"fmt"

	"harpocrates/internal/isa"
)

// CrashKind classifies architectural crash causes, mirroring the fault
// outcome taxonomy of the paper's SFI methodology (§II-E).
type CrashKind uint8

// Crash kinds.
const (
	CrashNone CrashKind = iota
	CrashBadAddress
	CrashDivide
	CrashInvalidOpcode
	CrashPrivileged
	CrashBadBranch
	CrashMisaligned
	CrashWatchdog
)

var crashNames = []string{
	"none", "bad-address", "divide-error", "invalid-opcode",
	"privileged", "bad-branch", "misaligned", "watchdog",
}

func (k CrashKind) String() string {
	if int(k) < len(crashNames) {
		return crashNames[k]
	}
	return fmt.Sprintf("crash?%d", uint8(k))
}

// Exception maps a crash kind to the HX86 architectural exception a
// real core would deliver for it. Kinds with no trap semantics — a wild
// branch leaving the program image, or the simulator watchdog — report
// isa.ExcNone: they are crashes/hangs, not architecturally detected
// faults.
func (k CrashKind) Exception() isa.Exception {
	switch k {
	case CrashDivide:
		return isa.ExcDivide
	case CrashInvalidOpcode:
		return isa.ExcInvalidOpcode
	case CrashPrivileged:
		return isa.ExcGeneralProtection
	case CrashBadAddress:
		return isa.ExcPageFault
	case CrashMisaligned:
		return isa.ExcAlignment
	default:
		return isa.ExcNone
	}
}

// CrashError is an architectural fault raised during execution.
type CrashError struct {
	Kind CrashKind
	Addr uint64 // faulting address for memory crashes
	PC   int    // instruction index, filled by the executor

	// Exc, when set, overrides the Kind-derived architectural exception
	// (e.g. a push/pop fault is #SS, not the generic #PF its
	// bad-address kind would imply).
	Exc isa.Exception
}

func (e *CrashError) Error() string {
	return fmt.Sprintf("crash at pc=%d: %v (addr=%#x)", e.PC, e.Kind, e.Addr)
}

// Exception returns the architectural exception the crash corresponds
// to: the explicit override if one was recorded, else the kind's
// default mapping. Nil-safe (nil reports isa.ExcNone).
func (e *CrashError) Exception() isa.Exception {
	if e == nil {
		return isa.ExcNone
	}
	if e.Exc != isa.ExcNone {
		return e.Exc
	}
	return e.Kind.Exception()
}

// FUHooks reroutes selected arithmetic through external functional-unit
// models (gate-level netlists during permanent/intermittent fault
// campaigns). A nil field means native Go semantics. All hooks operate at
// the full unit width; narrower operations pass zero-extended operands
// and the executor masks the result.
type FUHooks struct {
	// IntAdd computes sum = a + b + carryIn on the 64-bit integer adder.
	IntAdd func(a, b uint64, carryIn bool) uint64
	// IntMul computes the 128-bit product of two unsigned 64-bit values
	// on the integer multiplier array.
	IntMul func(a, b uint64) (lo, hi uint64)
	// FPAdd64 adds two IEEE-754 doubles (bit patterns) on the FP adder.
	FPAdd64 func(a, b uint64) uint64
	// FPMul64 multiplies two IEEE-754 doubles on the FP multiplier.
	FPMul64 func(a, b uint64) uint64
	// FPAdd32 adds two IEEE-754 singles on the FP adder.
	FPAdd32 func(a, b uint32) uint32
	// FPMul32 multiplies two IEEE-754 singles on the FP multiplier.
	FPMul32 func(a, b uint32) uint32
}

// State is the complete architectural state of an HX86 hart.
type State struct {
	GPR   [isa.NumGPR]uint64
	XMM   [isa.NumXMM][2]uint64
	Flags isa.Flags
	PC    int // instruction index into the program
	Mem   MemBus

	// FU, when non-nil, reroutes arithmetic through external unit models.
	FU *FUHooks

	// NondetSalt seeds the value streams of nondeterministic instructions
	// (RDTSC, RDRAND, CPUID). Two runs with different salts produce
	// different outputs iff the program executes such an instruction,
	// which is how the determinism filter detects them.
	NondetSalt uint64
	nondetCtr  uint64

	// InstRet counts retired instructions.
	InstRet uint64
}

// NewState returns a zeroed state bound to mem.
func NewState(mem MemBus) *State { return &State{Mem: mem} }

// Clone deep-copies the state. It requires the memory bus to be a plain
// *Memory (clone a state before handing it to a timing model, not after).
func (s *State) Clone() *State {
	c := *s
	mem, ok := s.Mem.(*Memory)
	if !ok {
		panic("arch: Clone requires a plain *Memory bus")
	}
	c.Mem = mem.Clone()
	if s.FU != nil {
		fu := *s.FU
		c.FU = &fu
	}
	return &c
}

// Signature computes a 64-bit digest of the architectural output: all
// GPRs (except RSP, which is an implementation address), all XMM
// registers, the flags, and the content of every writable memory region.
// This is the "final state of architectural registers and a signature
// over accessed memory regions" the paper's wrapper computes (§V-D).
// The memory part comes from Memory.Digest, which is maintained
// incrementally across writes — campaigns signature megabytes of region
// data per faulty run, and rescanning it was the single largest line
// item in their CPU profile. The digest is only ever compared against
// digests computed in the same process; its exact value carries no
// meaning.
func (s *State) Signature() uint64 {
	const (
		offset uint64 = 14695981039346656037
		prime  uint64 = 1099511628211
	)
	h := offset
	put := func(v uint64) { h = (h ^ v) * prime }
	for r, v := range s.GPR {
		if isa.Reg(r) == isa.RSP {
			continue
		}
		put(v)
	}
	for _, x := range s.XMM {
		put(x[0])
		put(x[1])
	}
	put(uint64(s.Flags))
	if m, ok := s.Mem.(*Memory); ok {
		put(m.Digest())
		return h
	}
	// Other MemBus bindings (none in-tree digest today): fold the raw
	// bytes word-at-a-time.
	for _, r := range s.Mem.Regions() {
		if !r.Writable {
			continue
		}
		b := r.Data
		for len(b) >= 8 {
			put(binary.LittleEndian.Uint64(b))
			b = b[8:]
		}
		var tail uint64
		for i, c := range b {
			tail |= uint64(c) << (8 * uint(i))
		}
		if len(b) > 0 {
			put(tail)
		}
	}
	return h
}

// NondetCounter returns the number of nondeterministic values drawn so
// far. The counter determines every future nondet value (given the
// salt), so state-equivalence checks — delta resimulation's reconvergence
// hash in particular — must include it: two states that agree everywhere
// else but have drawn a different number of nondet values diverge again
// at the next RDTSC/RDRAND.
func (s *State) NondetCounter() uint64 { return s.nondetCtr }

// RestoreNondetCounter rewinds the nondeterministic stream to a saved
// position — for deserializing a checkpointed execution state, whose
// future nondet values must replay identically.
func (s *State) RestoreNondetCounter(n uint64) { s.nondetCtr = n }

// nondet produces the next value of the nondeterministic stream
// (splitmix64 over salt+counter).
func (s *State) nondet() uint64 {
	s.nondetCtr++
	z := s.NondetSalt + s.nondetCtr*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
