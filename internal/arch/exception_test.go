package arch

import (
	"testing"

	"harpocrates/internal/isa"
)

// TestCrashKindException pins the crash-kind → architectural-exception
// mapping the trap outcome channel is built on. Wild branches and
// watchdog timeouts have no trap semantics and must map to ExcNone.
func TestCrashKindException(t *testing.T) {
	cases := []struct {
		kind CrashKind
		want isa.Exception
	}{
		{CrashNone, isa.ExcNone},
		{CrashDivide, isa.ExcDivide},
		{CrashInvalidOpcode, isa.ExcInvalidOpcode},
		{CrashPrivileged, isa.ExcGeneralProtection},
		{CrashBadAddress, isa.ExcPageFault},
		{CrashMisaligned, isa.ExcAlignment},
		{CrashBadBranch, isa.ExcNone},
		{CrashWatchdog, isa.ExcNone},
	}
	for _, tc := range cases {
		if got := tc.kind.Exception(); got != tc.want {
			t.Fatalf("%v.Exception() = %v; want %v", tc.kind, got, tc.want)
		}
	}
}

// TestCrashErrorException: the error-level accessor is nil-safe, derives
// the exception from the kind by default, and lets an explicit Exc
// override the default (the #SS stack-fault refinement of a bad
// address).
func TestCrashErrorException(t *testing.T) {
	var nilErr *CrashError
	if nilErr.Exception() != isa.ExcNone {
		t.Fatal("nil CrashError must report ExcNone")
	}
	def := &CrashError{Kind: CrashBadAddress}
	if def.Exception() != isa.ExcPageFault {
		t.Fatalf("default exception = %v; want #PF", def.Exception())
	}
	ss := &CrashError{Kind: CrashBadAddress, Exc: isa.ExcStackFault}
	if ss.Exception() != isa.ExcStackFault {
		t.Fatalf("override exception = %v; want #SS", ss.Exception())
	}
}

// TestStackFaultException: push/pop through an unmapped stack pointer
// raises a bad-address crash refined to the #SS stack-fault exception.
func TestStackFaultException(t *testing.T) {
	push := findVariant(t, isa.OpPUSH, isa.W64, isa.KReg)
	pop := findVariant(t, isa.OpPOP, isa.W64, isa.KReg)
	for _, tc := range []struct {
		name string
		in   isa.Inst
	}{
		{"push", isa.MakeInst(push, isa.RegOp(isa.RAX))},
		{"pop", isa.MakeInst(pop, isa.RegOp(isa.RAX))},
	} {
		s := testState(t)
		s.GPR[isa.RSP] = 0xdead0000 // far outside every mapped region
		err := s.Step([]isa.Inst{tc.in})
		if err == nil || err.Kind != CrashBadAddress {
			t.Fatalf("%s with wild RSP: err = %v, want bad-address crash", tc.name, err)
		}
		if err.Exception() != isa.ExcStackFault {
			t.Fatalf("%s with wild RSP: exception = %v, want #SS", tc.name, err.Exception())
		}
	}
}

// TestStepInstOverlay: StepInst executes the supplied instruction in
// place of prog[PC] — the decoder-corruption entry point — with normal
// PC sequencing against the real program.
func TestStepInstOverlay(t *testing.T) {
	mov := findVariant(t, isa.OpMOV, isa.W64, isa.KReg, isa.KImm)
	prog := []isa.Inst{isa.MakeInst(mov, isa.RegOp(isa.RAX), isa.ImmOp(1))}
	overlay := isa.MakeInst(mov, isa.RegOp(isa.RAX), isa.ImmOp(99))

	s := testState(t)
	if err := s.StepInst(prog, &overlay); err != nil {
		t.Fatal(err)
	}
	if s.GPR[isa.RAX] != 99 {
		t.Fatalf("overlay did not execute: RAX = %d", s.GPR[isa.RAX])
	}
	if s.PC != 1 {
		t.Fatalf("PC = %d after overlay step; want 1", s.PC)
	}

	s2 := testState(t)
	if err := s2.Step(prog); err != nil {
		t.Fatal(err)
	}
	if s2.GPR[isa.RAX] != 1 {
		t.Fatalf("plain Step changed semantics: RAX = %d", s2.GPR[isa.RAX])
	}
}
