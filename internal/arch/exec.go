package arch

import (
	"math"
	"math/bits"

	"harpocrates/internal/isa"
)

// Step executes prog[s.PC], updating state and PC. A non-nil result is an
// architectural crash; state may be partially updated.
func (s *State) Step(prog []isa.Inst) *CrashError {
	if s.PC < 0 || s.PC >= len(prog) {
		return &CrashError{Kind: CrashBadBranch, PC: s.PC}
	}
	return s.StepInst(prog, &prog[s.PC])
}

// StepInst executes in as if it were the instruction at prog[s.PC],
// updating state and PC. The out-of-order core uses this overlay entry
// point to execute decoder-corrupted instructions: the fetched bytes
// decoded to something other than what the program image holds, and
// the substituted instruction must run with the original PC's
// control-flow context. s.PC must be a valid index into prog.
func (s *State) StepInst(prog []isa.Inst, in *isa.Inst) *CrashError {
	pc := s.PC
	if err := s.exec(in); err != nil {
		err.PC = pc
		return err
	}
	s.InstRet++
	return nil
}

// Run executes the program until it falls off the end (PC == len(prog)),
// crashes, or exceeds maxSteps. It returns the number of retired
// instructions.
func Run(prog []isa.Inst, s *State, maxSteps int) (int, *CrashError) {
	for steps := 0; ; steps++ {
		if s.PC == len(prog) {
			return steps, nil
		}
		if steps >= maxSteps {
			return steps, &CrashError{Kind: CrashWatchdog, PC: s.PC}
		}
		if err := s.Step(prog); err != nil {
			return steps, err
		}
	}
}

// --- register and operand access -------------------------------------

func signExtend(v uint64, w isa.Width) uint64 {
	sh := 64 - 8*uint(w)
	return uint64(int64(v<<sh) >> sh)
}

// EffAddr computes the effective address of a memory reference.
func (s *State) EffAddr(m isa.MemRef) uint64 {
	a := s.GPR[m.Base] + uint64(int64(m.Disp))
	if m.HasIndex {
		a += s.GPR[m.Index] * uint64(m.Scale)
	}
	return a
}

// ReadGPR reads a register at a given width (zero-extended).
func (s *State) ReadGPR(r isa.Reg, w isa.Width) uint64 { return s.GPR[r] & w.Mask() }

// WriteGPR writes a register with x86 width rules: 64-bit writes the full
// register, 32-bit zero-extends, 8/16-bit merge into the low bits.
func (s *State) WriteGPR(r isa.Reg, w isa.Width, v uint64) {
	switch w {
	case isa.W64:
		s.GPR[r] = v
	case isa.W32:
		s.GPR[r] = v & 0xffffffff
	default:
		m := w.Mask()
		s.GPR[r] = (s.GPR[r] &^ m) | (v & m)
	}
}

// readOp reads an integer operand value (zero-extended to 64 bits).
func (s *State) readOp(op *isa.Operand, w isa.Width) (uint64, *CrashError) {
	switch op.Kind {
	case isa.KReg:
		return s.ReadGPR(op.Reg, w), nil
	case isa.KImm:
		return uint64(op.Imm) & w.Mask(), nil
	case isa.KMem:
		return s.Mem.Read(s.EffAddr(op.Mem), uint64(w))
	}
	return 0, &CrashError{Kind: CrashInvalidOpcode}
}

// writeOp writes an integer operand.
func (s *State) writeOp(op *isa.Operand, w isa.Width, v uint64) *CrashError {
	switch op.Kind {
	case isa.KReg:
		s.WriteGPR(op.Reg, w, v)
		return nil
	case isa.KMem:
		return s.Mem.Write(s.EffAddr(op.Mem), uint64(w), v&w.Mask())
	}
	return &CrashError{Kind: CrashInvalidOpcode}
}

// readX reads a 128-bit operand (xmm or memory).
func (s *State) readX(op *isa.Operand, w isa.Width) ([2]uint64, *CrashError) {
	switch op.Kind {
	case isa.KXmm:
		return s.XMM[op.X], nil
	case isa.KMem:
		addr := s.EffAddr(op.Mem)
		if w == isa.W128 {
			if addr&15 != 0 {
				return [2]uint64{}, &CrashError{Kind: CrashMisaligned, Addr: addr}
			}
			return s.Mem.Read128(addr)
		}
		v, err := s.Mem.Read(addr, uint64(w))
		return [2]uint64{v, 0}, err
	}
	return [2]uint64{}, &CrashError{Kind: CrashInvalidOpcode}
}

// --- flags -------------------------------------------------------------

func parityEven(b uint64) bool { return bits.OnesCount8(uint8(b))%2 == 0 }

func (s *State) setZSP(res uint64, w isa.Width) {
	s.Flags &^= isa.ZF | isa.SF | isa.PF
	if res&w.Mask() == 0 {
		s.Flags |= isa.ZF
	}
	if res&w.SignBit() != 0 {
		s.Flags |= isa.SF
	}
	if parityEven(res) {
		s.Flags |= isa.PF
	}
}

func (s *State) setLogicFlags(res uint64, w isa.Width) {
	s.Flags &^= isa.CF | isa.OF
	s.setZSP(res, w)
}

func (s *State) setBool(f isa.Flags, v bool) {
	if v {
		s.Flags |= f
	} else {
		s.Flags &^= f
	}
}

// addCore computes a + b + cin at width w, routing through the integer
// adder hook when installed. CF and OF are derived from the (possibly
// faulty) result via carry reconstruction, so a stuck-at fault in the
// adder consistently corrupts the flags it would corrupt in hardware.
func (s *State) addCore(a, b uint64, cin bool, w isa.Width) (res uint64, cf, of bool) {
	a &= w.Mask()
	b &= w.Mask()
	var sum uint64
	if s.FU != nil && s.FU.IntAdd != nil {
		sum = s.FU.IntAdd(a, b, cin)
	} else {
		sum = a + b
		if cin {
			sum++
		}
	}
	res = sum & w.Mask()
	ci := a ^ b ^ res              // carry-in per bit (bit 0 equals cin)
	co := (a & b) | ((a | b) & ci) // carry-out per bit
	msb := uint(w.Bits() - 1)
	cf = (co>>msb)&1 != 0
	of = ((ci^co)>>msb)&1 != 0
	return res, cf, of
}

// subCore computes a - b - bin via the adder (two's-complement), matching
// how hardware ALUs subtract.
func (s *State) subCore(a, b uint64, bin bool, w isa.Width) (res uint64, cf, of bool) {
	res, c, of := s.addCore(a, ^b&w.Mask(), !bin, w)
	return res, !c, of
}

// mulCore computes the widening product of a and b at width w, routed
// through the multiplier hook when installed.
func (s *State) mulCore(a, b uint64, w isa.Width, signed bool) (lo, hi uint64) {
	if signed {
		a = signExtend(a, w)
		b = signExtend(b, w)
	} else {
		a &= w.Mask()
		b &= w.Mask()
	}
	var phi, plo uint64
	if s.FU != nil && s.FU.IntMul != nil {
		plo, phi = s.FU.IntMul(a, b)
	} else {
		phi, plo = bits.Mul64(a, b)
	}
	if signed {
		if int64(a) < 0 {
			phi -= b
		}
		if int64(b) < 0 {
			phi -= a
		}
	}
	if w == isa.W64 {
		return plo, phi
	}
	return plo & w.Mask(), (plo >> (8 * uint(w))) & w.Mask()
}

// --- FP helpers ----------------------------------------------------------

func (s *State) fpAdd64(a, b uint64) uint64 {
	if s.FU != nil && s.FU.FPAdd64 != nil {
		return s.FU.FPAdd64(a, b)
	}
	return math.Float64bits(math.Float64frombits(a) + math.Float64frombits(b))
}

func (s *State) fpSub64(a, b uint64) uint64 {
	return s.fpAdd64(a, b^(1<<63))
}

func (s *State) fpMul64(a, b uint64) uint64 {
	if s.FU != nil && s.FU.FPMul64 != nil {
		return s.FU.FPMul64(a, b)
	}
	return math.Float64bits(math.Float64frombits(a) * math.Float64frombits(b))
}

func (s *State) fpAdd32(a, b uint32) uint32 {
	if s.FU != nil && s.FU.FPAdd32 != nil {
		return s.FU.FPAdd32(a, b)
	}
	return math.Float32bits(math.Float32frombits(a) + math.Float32frombits(b))
}

func (s *State) fpMul32(a, b uint32) uint32 {
	if s.FU != nil && s.FU.FPMul32 != nil {
		return s.FU.FPMul32(a, b)
	}
	return math.Float32bits(math.Float32frombits(a) * math.Float32frombits(b))
}

// --- main dispatch ---------------------------------------------------------

func (s *State) exec(in *isa.Inst) *CrashError {
	v := isa.Lookup(in.V)
	w := v.Width
	nextPC := s.PC + 1

	switch v.Op {
	case isa.OpINVALID:
		return &CrashError{Kind: CrashInvalidOpcode}

	case isa.OpADD, isa.OpADC, isa.OpSUB, isa.OpSBB, isa.OpCMP:
		a, err := s.readOp(&in.Ops[0], w)
		if err != nil {
			return err
		}
		b, err := s.readOp(&in.Ops[1], w)
		if err != nil {
			return err
		}
		cin := false
		if v.Op == isa.OpADC || v.Op == isa.OpSBB {
			cin = s.Flags&isa.CF != 0
		}
		var res uint64
		var cf, of bool
		if v.Op == isa.OpADD || v.Op == isa.OpADC {
			res, cf, of = s.addCore(a, b, cin, w)
		} else {
			res, cf, of = s.subCore(a, b, cin, w)
		}
		s.setBool(isa.CF, cf)
		s.setBool(isa.OF, of)
		s.setZSP(res, w)
		if v.Op != isa.OpCMP {
			if err := s.writeOp(&in.Ops[0], w, res); err != nil {
				return err
			}
		}

	case isa.OpAND, isa.OpOR, isa.OpXOR, isa.OpTEST:
		a, err := s.readOp(&in.Ops[0], w)
		if err != nil {
			return err
		}
		b, err := s.readOp(&in.Ops[1], w)
		if err != nil {
			return err
		}
		var res uint64
		switch v.Op {
		case isa.OpAND, isa.OpTEST:
			res = a & b
		case isa.OpOR:
			res = a | b
		case isa.OpXOR:
			res = a ^ b
		}
		s.setLogicFlags(res, w)
		if v.Op != isa.OpTEST {
			if err := s.writeOp(&in.Ops[0], w, res); err != nil {
				return err
			}
		}

	case isa.OpMOV:
		b, err := s.readOp(&in.Ops[1], w)
		if err != nil {
			return err
		}
		if err := s.writeOp(&in.Ops[0], w, b); err != nil {
			return err
		}

	case isa.OpINC, isa.OpDEC:
		a, err := s.readOp(&in.Ops[0], w)
		if err != nil {
			return err
		}
		var res uint64
		var of bool
		if v.Op == isa.OpINC {
			res, _, of = s.addCore(a, 1, false, w)
		} else {
			res, _, of = s.subCore(a, 1, false, w)
		}
		s.setBool(isa.OF, of) // CF preserved (x86 rule)
		s.setZSP(res, w)
		if err := s.writeOp(&in.Ops[0], w, res); err != nil {
			return err
		}

	case isa.OpNEG:
		a, err := s.readOp(&in.Ops[0], w)
		if err != nil {
			return err
		}
		res, _, of := s.subCore(0, a, false, w)
		s.setBool(isa.CF, a&w.Mask() != 0)
		s.setBool(isa.OF, of)
		s.setZSP(res, w)
		if err := s.writeOp(&in.Ops[0], w, res); err != nil {
			return err
		}

	case isa.OpNOT:
		a, err := s.readOp(&in.Ops[0], w)
		if err != nil {
			return err
		}
		if err := s.writeOp(&in.Ops[0], w, ^a); err != nil {
			return err
		}

	case isa.OpSHL, isa.OpSHR, isa.OpSAR, isa.OpROL, isa.OpROR, isa.OpRCL, isa.OpRCR:
		if err := s.execShift(in, v); err != nil {
			return err
		}

	case isa.OpLEA:
		s.WriteGPR(in.Ops[0].Reg, w, s.EffAddr(in.Ops[1].Mem))

	case isa.OpMOVZX, isa.OpMOVSX:
		srcW := v.Ops[1].Width
		a, err := s.readOp(&in.Ops[1], srcW)
		if err != nil {
			return err
		}
		if v.Op == isa.OpMOVSX {
			a = signExtend(a, srcW)
		}
		s.WriteGPR(in.Ops[0].Reg, w, a)

	case isa.OpXCHG:
		a, err := s.readOp(&in.Ops[0], w)
		if err != nil {
			return err
		}
		b, err := s.readOp(&in.Ops[1], w)
		if err != nil {
			return err
		}
		if err := s.writeOp(&in.Ops[0], w, b); err != nil {
			return err
		}
		if err := s.writeOp(&in.Ops[1], w, a); err != nil {
			return err
		}

	case isa.OpMUL, isa.OpIMUL:
		a := s.ReadGPR(isa.RAX, w)
		b, err := s.readOp(&in.Ops[0], w)
		if err != nil {
			return err
		}
		lo, hi := s.mulCore(a, b, w, v.Op == isa.OpIMUL)
		s.WriteGPR(isa.RAX, w, lo)
		s.WriteGPR(isa.RDX, w, hi)
		overflow := hi != 0
		if v.Op == isa.OpIMUL {
			fill := uint64(0)
			if lo&w.SignBit() != 0 {
				fill = w.Mask()
			}
			overflow = hi != fill
		}
		s.setBool(isa.CF, overflow)
		s.setBool(isa.OF, overflow)
		s.setZSP(lo, w)

	case isa.OpDIV, isa.OpIDIV:
		if err := s.execDiv(in, v); err != nil {
			return err
		}

	case isa.OpIMULRR, isa.OpIMULRRI:
		var a, b uint64
		var err *CrashError
		if v.Op == isa.OpIMULRR {
			a, err = s.readOp(&in.Ops[0], w)
			if err != nil {
				return err
			}
			b, err = s.readOp(&in.Ops[1], w)
		} else {
			a, err = s.readOp(&in.Ops[1], w)
			if err != nil {
				return err
			}
			b = uint64(in.Ops[2].Imm) & w.Mask()
		}
		if err != nil {
			return err
		}
		lo, hi := s.mulCore(a, b, w, true)
		fill := uint64(0)
		if lo&w.SignBit() != 0 {
			fill = w.Mask()
		}
		overflow := hi != fill
		s.setBool(isa.CF, overflow)
		s.setBool(isa.OF, overflow)
		s.setZSP(lo, w)
		s.WriteGPR(in.Ops[0].Reg, w, lo)

	case isa.OpPUSH:
		val, err := s.readOp(&in.Ops[0], isa.W64)
		if err != nil {
			return err
		}
		if in.Ops[0].Kind == isa.KImm {
			val = signExtend(val, isa.W32)
		}
		sp := s.GPR[isa.RSP] - 8
		if err := s.Mem.Write(sp, 8, val); err != nil {
			// A push outside the stack image is a stack-segment fault,
			// not the generic page fault the bus error implies.
			err.Exc = isa.ExcStackFault
			return err
		}
		s.GPR[isa.RSP] = sp

	case isa.OpPOP:
		val, err := s.Mem.Read(s.GPR[isa.RSP], 8)
		if err != nil {
			err.Exc = isa.ExcStackFault
			return err
		}
		s.GPR[isa.RSP] += 8
		if err := s.writeOp(&in.Ops[0], isa.W64, val); err != nil {
			return err
		}

	case isa.OpSETcc:
		var val uint64
		if v.Cond.Eval(s.Flags) {
			val = 1
		}
		if err := s.writeOp(&in.Ops[0], isa.W8, val); err != nil {
			return err
		}

	case isa.OpCMOVcc:
		src, err := s.readOp(&in.Ops[1], w)
		if err != nil {
			return err
		}
		val := s.ReadGPR(in.Ops[0].Reg, w)
		if v.Cond.Eval(s.Flags) {
			val = src
		}
		s.WriteGPR(in.Ops[0].Reg, w, val)

	case isa.OpJcc, isa.OpJMP:
		taken := v.Op == isa.OpJMP || v.Cond.Eval(s.Flags)
		if taken {
			nextPC = s.PC + 1 + int(in.Ops[0].Imm)
		}

	case isa.OpBSWAP:
		a := s.ReadGPR(in.Ops[0].Reg, w)
		if w == isa.W32 {
			a = uint64(bits.ReverseBytes32(uint32(a)))
		} else {
			a = bits.ReverseBytes64(a)
		}
		s.WriteGPR(in.Ops[0].Reg, w, a)

	case isa.OpBSF, isa.OpBSR, isa.OpPOPCNT, isa.OpLZCNT, isa.OpTZCNT:
		if err := s.execBitScan(in, v); err != nil {
			return err
		}

	case isa.OpBT, isa.OpBTS, isa.OpBTR, isa.OpBTC:
		a, err := s.readOp(&in.Ops[0], w)
		if err != nil {
			return err
		}
		b, err := s.readOp(&in.Ops[1], w)
		if err != nil {
			return err
		}
		bit := uint(b) % uint(w.Bits())
		s.setBool(isa.CF, (a>>bit)&1 != 0)
		switch v.Op {
		case isa.OpBTS:
			a |= 1 << bit
		case isa.OpBTR:
			a &^= 1 << bit
		case isa.OpBTC:
			a ^= 1 << bit
		}
		if v.Op != isa.OpBT {
			if err := s.writeOp(&in.Ops[0], w, a); err != nil {
				return err
			}
		}

	case isa.OpNOP:

	case isa.OpRDTSC:
		t := s.nondet()
		s.WriteGPR(isa.RAX, isa.W32, t&0xffffffff)
		s.WriteGPR(isa.RDX, isa.W32, t>>32)

	case isa.OpRDRAND:
		s.WriteGPR(in.Ops[0].Reg, isa.W64, s.nondet())
		s.Flags |= isa.CF

	case isa.OpCPUID:
		t := s.nondet() ^ s.GPR[isa.RAX]*0x2545f4914f6cdd1d
		s.GPR[isa.RAX] = t
		s.GPR[isa.RBX] = bits.RotateLeft64(t, 17)
		s.GPR[isa.RCX] = bits.RotateLeft64(t, 31)
		s.GPR[isa.RDX] = bits.RotateLeft64(t, 47)

	case isa.OpHLT, isa.OpINB, isa.OpOUTB:
		return &CrashError{Kind: CrashPrivileged}

	default:
		handled, err := s.execExt(in, v)
		if err != nil {
			return err
		}
		if !handled {
			if err := s.execSSE(in, v); err != nil {
				return err
			}
		}
	}

	s.PC = nextPC
	return nil
}
