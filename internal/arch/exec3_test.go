package arch

import (
	"math"
	"math/bits"
	"math/rand/v2"
	"testing"

	"harpocrates/internal/isa"
)

// findVariant3 locates an extended variant by op, width and kinds.
func findVariant3(t testing.TB, op isa.Op, w isa.Width, kinds ...isa.OpKind) isa.VariantID {
	t.Helper()
	for _, id := range isa.ByOp(op) {
		v := isa.Lookup(id)
		if v.Width != w || len(v.Ops) != len(kinds) {
			continue
		}
		ok := true
		for i, k := range kinds {
			if v.Ops[i].Kind != k {
				ok = false
			}
		}
		if ok {
			return id
		}
	}
	t.Fatalf("no extended variant op=%d w=%v", op, w)
	return 0
}

func TestExtendedTableSize(t *testing.T) {
	if n := isa.NumVariants(); n < 780 {
		t.Fatalf("variant table has %d entries, want >= 780 after the extension", n)
	}
	t.Logf("extended variant table: %d variants, %d opcode slots", isa.NumVariants(), isa.NumOpcodeSlots())
}

func TestShldShrd(t *testing.T) {
	s := testState(t)
	shld := findVariant3(t, isa.OpSHLD, isa.W64, isa.KReg, isa.KReg, isa.KImm)
	shrd := findVariant3(t, isa.OpSHRD, isa.W64, isa.KReg, isa.KReg, isa.KImm)
	rng := rand.New(rand.NewPCG(61, 62))
	for i := 0; i < 3000; i++ {
		a, b := rng.Uint64(), rng.Uint64()
		n := int64(1 + rng.IntN(62))
		s.GPR[isa.RAX], s.GPR[isa.RBX] = a, b
		step1(t, s, isa.MakeInst(shld, isa.RegOp(isa.RAX), isa.RegOp(isa.RBX), isa.ImmOp(n)))
		if want := a<<uint(n) | b>>uint(64-n); s.GPR[isa.RAX] != want {
			t.Fatalf("shld(%#x,%#x,%d) = %#x, want %#x", a, b, n, s.GPR[isa.RAX], want)
		}
		s.GPR[isa.RAX], s.GPR[isa.RBX] = a, b
		step1(t, s, isa.MakeInst(shrd, isa.RegOp(isa.RAX), isa.RegOp(isa.RBX), isa.ImmOp(n)))
		if want := a>>uint(n) | b<<uint(64-n); s.GPR[isa.RAX] != want {
			t.Fatalf("shrd(%#x,%#x,%d) = %#x, want %#x", a, b, n, s.GPR[isa.RAX], want)
		}
	}
}

func TestBMIOps(t *testing.T) {
	s := testState(t)
	rng := rand.New(rand.NewPCG(63, 64))
	andn := findVariant3(t, isa.OpANDN, isa.W64, isa.KReg, isa.KReg, isa.KReg)
	blsi := findVariant3(t, isa.OpBLSI, isa.W64, isa.KReg, isa.KReg)
	blsr := findVariant3(t, isa.OpBLSR, isa.W64, isa.KReg, isa.KReg)
	blsmsk := findVariant3(t, isa.OpBLSMSK, isa.W64, isa.KReg, isa.KReg)
	bzhi := findVariant3(t, isa.OpBZHI, isa.W64, isa.KReg, isa.KReg, isa.KReg)
	shlx := findVariant3(t, isa.OpSHLX, isa.W64, isa.KReg, isa.KReg, isa.KReg)
	for i := 0; i < 3000; i++ {
		a, b := rng.Uint64(), rng.Uint64()
		s.GPR[isa.RBX], s.GPR[isa.RCX] = a, b
		step1(t, s, isa.MakeInst(andn, isa.RegOp(isa.RAX), isa.RegOp(isa.RBX), isa.RegOp(isa.RCX)))
		if s.GPR[isa.RAX] != ^a&b {
			t.Fatalf("andn(%#x,%#x) = %#x", a, b, s.GPR[isa.RAX])
		}
		s.GPR[isa.RBX] = a
		step1(t, s, isa.MakeInst(blsi, isa.RegOp(isa.RAX), isa.RegOp(isa.RBX)))
		if s.GPR[isa.RAX] != a&-a {
			t.Fatalf("blsi(%#x) = %#x", a, s.GPR[isa.RAX])
		}
		step1(t, s, isa.MakeInst(blsr, isa.RegOp(isa.RAX), isa.RegOp(isa.RBX)))
		if s.GPR[isa.RAX] != a&(a-1) {
			t.Fatalf("blsr(%#x) = %#x", a, s.GPR[isa.RAX])
		}
		step1(t, s, isa.MakeInst(blsmsk, isa.RegOp(isa.RAX), isa.RegOp(isa.RBX)))
		if s.GPR[isa.RAX] != a^(a-1) {
			t.Fatalf("blsmsk(%#x) = %#x", a, s.GPR[isa.RAX])
		}
		idx := b & 0x7f
		s.GPR[isa.RCX] = idx
		step1(t, s, isa.MakeInst(bzhi, isa.RegOp(isa.RAX), isa.RegOp(isa.RBX), isa.RegOp(isa.RCX)))
		want := a
		if idx < 64 {
			want = a & (1<<idx - 1)
		}
		if s.GPR[isa.RAX] != want {
			t.Fatalf("bzhi(%#x,%d) = %#x, want %#x", a, idx, s.GPR[isa.RAX], want)
		}
		n := b % 64
		s.GPR[isa.RCX] = n
		step1(t, s, isa.MakeInst(shlx, isa.RegOp(isa.RAX), isa.RegOp(isa.RBX), isa.RegOp(isa.RCX)))
		if s.GPR[isa.RAX] != a<<n {
			t.Fatalf("shlx(%#x,%d) = %#x", a, n, s.GPR[isa.RAX])
		}
	}
}

func TestBextr(t *testing.T) {
	s := testState(t)
	bextr := findVariant3(t, isa.OpBEXTR, isa.W64, isa.KReg, isa.KReg, isa.KReg)
	s.GPR[isa.RBX] = 0xdeadbeefcafebabe
	s.GPR[isa.RCX] = 8 | 16<<8 // start 8, length 16
	step1(t, s, isa.MakeInst(bextr, isa.RegOp(isa.RAX), isa.RegOp(isa.RBX), isa.RegOp(isa.RCX)))
	if s.GPR[isa.RAX] != 0xfeba {
		t.Fatalf("bextr = %#x, want 0xfeba", s.GPR[isa.RAX])
	}
}

func TestXadd(t *testing.T) {
	s := testState(t)
	xadd := findVariant3(t, isa.OpXADD, isa.W64, isa.KReg, isa.KReg)
	s.GPR[isa.RAX], s.GPR[isa.RBX] = 10, 32
	step1(t, s, isa.MakeInst(xadd, isa.RegOp(isa.RAX), isa.RegOp(isa.RBX)))
	if s.GPR[isa.RAX] != 42 || s.GPR[isa.RBX] != 10 {
		t.Fatalf("xadd: rax=%d rbx=%d, want 42, 10", s.GPR[isa.RAX], s.GPR[isa.RBX])
	}
}

func TestCmpxchg(t *testing.T) {
	s := testState(t)
	cx := findVariant3(t, isa.OpCMPXCHG, isa.W64, isa.KReg, isa.KReg)
	// Equal: dst <- src, ZF set.
	s.GPR[isa.RAX], s.GPR[isa.RBX], s.GPR[isa.RCX] = 7, 7, 99
	step1(t, s, isa.MakeInst(cx, isa.RegOp(isa.RBX), isa.RegOp(isa.RCX)))
	if s.GPR[isa.RBX] != 99 || s.Flags&isa.ZF == 0 {
		t.Fatalf("cmpxchg equal: rbx=%d flags=%v", s.GPR[isa.RBX], s.Flags)
	}
	// Not equal: RAX <- dst, ZF clear.
	s.GPR[isa.RAX], s.GPR[isa.RBX], s.GPR[isa.RCX] = 1, 7, 99
	step1(t, s, isa.MakeInst(cx, isa.RegOp(isa.RBX), isa.RegOp(isa.RCX)))
	if s.GPR[isa.RAX] != 7 || s.GPR[isa.RBX] != 7 || s.Flags&isa.ZF != 0 {
		t.Fatalf("cmpxchg unequal: rax=%d rbx=%d", s.GPR[isa.RAX], s.GPR[isa.RBX])
	}
}

func TestMovbe(t *testing.T) {
	s := testState(t)
	ld := findVariant3(t, isa.OpMOVBE, isa.W64, isa.KReg, isa.KMem)
	st := findVariant3(t, isa.OpMOVBE, isa.W64, isa.KMem, isa.KReg)
	s.GPR[isa.RBX] = 0x0102030405060708
	step1(t, s, isa.MakeInst(st, isa.MemOp(isa.RSI, 0), isa.RegOp(isa.RBX)))
	v, _ := s.Mem.Read(0x10000, 8)
	if v != 0x0807060504030201 {
		t.Fatalf("movbe store: %#x", v)
	}
	step1(t, s, isa.MakeInst(ld, isa.RegOp(isa.RCX), isa.MemOp(isa.RSI, 0)))
	if s.GPR[isa.RCX] != 0x0102030405060708 {
		t.Fatalf("movbe load: %#x", s.GPR[isa.RCX])
	}
}

func TestAdcxAdoxIndependentChains(t *testing.T) {
	s := testState(t)
	adcx := findVariant3(t, isa.OpADCX, isa.W64, isa.KReg, isa.KReg)
	adox := findVariant3(t, isa.OpADOX, isa.W64, isa.KReg, isa.KReg)
	s.GPR[isa.RAX] = ^uint64(0)
	s.GPR[isa.RBX] = 1
	s.Flags = isa.OF // OF must be untouched by adcx
	step1(t, s, isa.MakeInst(adcx, isa.RegOp(isa.RAX), isa.RegOp(isa.RBX)))
	if s.GPR[isa.RAX] != 0 || s.Flags&isa.CF == 0 || s.Flags&isa.OF == 0 {
		t.Fatalf("adcx: rax=%d flags=%v", s.GPR[isa.RAX], s.Flags)
	}
	// adox consumes OF as its carry.
	s.GPR[isa.RAX] = 5
	s.GPR[isa.RBX] = 10
	step1(t, s, isa.MakeInst(adox, isa.RegOp(isa.RAX), isa.RegOp(isa.RBX)))
	if s.GPR[isa.RAX] != 16 { // 5 + 10 + OF(1)
		t.Fatalf("adox: rax=%d, want 16", s.GPR[isa.RAX])
	}
	if s.Flags&isa.CF == 0 {
		t.Fatal("adox must not disturb CF")
	}
}

func TestSignExtensions(t *testing.T) {
	s := testState(t)
	cdqe := findVariant3(t, isa.OpCSEX, isa.W64)
	cqo := findVariant3(t, isa.OpCSPLIT, isa.W64)
	s.GPR[isa.RAX] = 0x80000000 // negative as int32
	step1(t, s, isa.MakeInst(cdqe))
	if s.GPR[isa.RAX] != 0xffffffff80000000 {
		t.Fatalf("cdqe: %#x", s.GPR[isa.RAX])
	}
	step1(t, s, isa.MakeInst(cqo))
	if s.GPR[isa.RDX] != ^uint64(0) {
		t.Fatalf("cqo: rdx=%#x", s.GPR[isa.RDX])
	}
}

func TestLahfSahfRoundTrip(t *testing.T) {
	s := testState(t)
	lahf := findVariant3(t, isa.OpLAHF, isa.W8)
	sahf := findVariant3(t, isa.OpSAHF, isa.W8)
	s.Flags = isa.CF | isa.ZF
	step1(t, s, isa.MakeInst(lahf))
	s.Flags = isa.SF | isa.OF
	step1(t, s, isa.MakeInst(sahf))
	// CF and ZF restored from AH; OF preserved; SF cleared by AH.
	if s.Flags&isa.CF == 0 || s.Flags&isa.ZF == 0 || s.Flags&isa.OF == 0 || s.Flags&isa.SF != 0 {
		t.Fatalf("sahf restored flags = %v", s.Flags)
	}
}

func TestCarryFlagOps(t *testing.T) {
	s := testState(t)
	clc := findVariant3(t, isa.OpCLC, isa.W8)
	stc := findVariant3(t, isa.OpSTC, isa.W8)
	cmc := findVariant3(t, isa.OpCMC, isa.W8)
	step1(t, s, isa.MakeInst(stc))
	if s.Flags&isa.CF == 0 {
		t.Fatal("stc")
	}
	step1(t, s, isa.MakeInst(cmc))
	if s.Flags&isa.CF != 0 {
		t.Fatal("cmc")
	}
	step1(t, s, isa.MakeInst(cmc))
	step1(t, s, isa.MakeInst(clc))
	if s.Flags&isa.CF != 0 {
		t.Fatal("clc")
	}
}

func TestPackedSingle(t *testing.T) {
	s := testState(t)
	addps := findVariant3(t, isa.OpADDPS, isa.W128, isa.KXmm, isa.KXmm)
	pack := func(a, b, c, d float32) [2]uint64 {
		return [2]uint64{
			uint64(math.Float32bits(a)) | uint64(math.Float32bits(b))<<32,
			uint64(math.Float32bits(c)) | uint64(math.Float32bits(d))<<32,
		}
	}
	s.XMM[0] = pack(1, 2, 3, 4)
	s.XMM[1] = pack(10, 20, 30, 40)
	step1(t, s, isa.MakeInst(addps, isa.XmmOp(0), isa.XmmOp(1)))
	want := pack(11, 22, 33, 44)
	if s.XMM[0] != want {
		t.Fatalf("addps = %#x, want %#x", s.XMM[0], want)
	}
}

func TestVectorShifts(t *testing.T) {
	s := testState(t)
	psllq := findVariant3(t, isa.OpPSLLQ, isa.W128, isa.KXmm, isa.KImm)
	psrld := findVariant3(t, isa.OpPSRLD, isa.W128, isa.KXmm, isa.KImm)
	s.XMM[2] = [2]uint64{0x1, 0x8000000000000000}
	step1(t, s, isa.MakeInst(psllq, isa.XmmOp(2), isa.ImmOp(4)))
	if s.XMM[2] != [2]uint64{0x10, 0} {
		t.Fatalf("psllq: %#x", s.XMM[2])
	}
	s.XMM[2] = [2]uint64{0x80000000_40000000, 0x10000000_20000000}
	step1(t, s, isa.MakeInst(psrld, isa.XmmOp(2), isa.ImmOp(4)))
	if s.XMM[2] != [2]uint64{0x08000000_04000000, 0x01000000_02000000} {
		t.Fatalf("psrld: %#x", s.XMM[2])
	}
}

func TestPshufd(t *testing.T) {
	s := testState(t)
	pshufd := findVariant3(t, isa.OpPSHUFD, isa.W128, isa.KXmm, isa.KXmm, isa.KImm)
	s.XMM[1] = [2]uint64{0x11111111_00000000, 0x33333333_22222222}
	// imm 0b00_01_10_11: dword0<-3, dword1<-2, dword2<-1, dword3<-0
	step1(t, s, isa.MakeInst(pshufd, isa.XmmOp(0), isa.XmmOp(1), isa.ImmOp(0b00011011)))
	if s.XMM[0] != [2]uint64{0x22222222_33333333, 0x00000000_11111111} {
		t.Fatalf("pshufd: %#x", s.XMM[0])
	}
}

func TestPcmpAndMask(t *testing.T) {
	s := testState(t)
	pcmpeqd := findVariant3(t, isa.OpPCMPEQD, isa.W128, isa.KXmm, isa.KXmm)
	movmskps := findVariant3(t, isa.OpMOVMSKPS, isa.W64, isa.KReg, isa.KXmm)
	s.XMM[0] = [2]uint64{0x00000005_00000001, 0x00000009_00000003}
	s.XMM[1] = [2]uint64{0x00000005_00000002, 0x00000008_00000003}
	step1(t, s, isa.MakeInst(pcmpeqd, isa.XmmOp(0), isa.XmmOp(1)))
	if s.XMM[0] != [2]uint64{0xffffffff_00000000, 0x00000000_ffffffff} {
		t.Fatalf("pcmpeqd: %#x", s.XMM[0])
	}
	step1(t, s, isa.MakeInst(movmskps, isa.RegOp(isa.RAX), isa.XmmOp(0)))
	if s.GPR[isa.RAX] != 0b0110 {
		t.Fatalf("movmskps: %#b", s.GPR[isa.RAX])
	}
}

func TestPmuludq(t *testing.T) {
	s := testState(t)
	pm := findVariant3(t, isa.OpPMULUDQ, isa.W128, isa.KXmm, isa.KXmm)
	s.XMM[0] = [2]uint64{0xffffffff, 3}
	s.XMM[1] = [2]uint64{0xffffffff, 5}
	step1(t, s, isa.MakeInst(pm, isa.XmmOp(0), isa.XmmOp(1)))
	hi, lo := bits.Mul64(0xffffffff, 0xffffffff)
	_ = hi
	if s.XMM[0] != [2]uint64{lo, 15} {
		t.Fatalf("pmuludq: %#x", s.XMM[0])
	}
}

func TestCvtSingleRoundTrip(t *testing.T) {
	s := testState(t)
	si2ss := findVariant3(t, isa.OpCVTSI2SS, isa.W32, isa.KXmm, isa.KReg)
	// W32-dst variant with r32 source.
	var id isa.VariantID
	for _, vid := range isa.ByOp(isa.OpCVTSI2SS) {
		if isa.Lookup(vid).Ops[1].Width == isa.W64 {
			id = vid
		}
	}
	_ = si2ss
	ss2si := findVariant3(t, isa.OpCVTSS2SI, isa.W64, isa.KReg, isa.KXmm)
	s.GPR[isa.RBX] = uint64(12345)
	step1(t, s, isa.MakeInst(id, isa.XmmOp(0), isa.RegOp(isa.RBX)))
	step1(t, s, isa.MakeInst(ss2si, isa.RegOp(isa.RCX), isa.XmmOp(0)))
	if s.GPR[isa.RCX] != 12345 {
		t.Fatalf("cvt ss round trip: %d", s.GPR[isa.RCX])
	}
}

func TestMovupdUnaligned(t *testing.T) {
	s := testState(t)
	ld := findVariant3(t, isa.OpMOVUPD, isa.W128, isa.KXmm, isa.KMem)
	st := findVariant3(t, isa.OpMOVUPD, isa.W128, isa.KMem, isa.KXmm)
	s.XMM[3] = [2]uint64{0x1111, 0x2222}
	// Deliberately misaligned address: must NOT crash (unlike movapd).
	step1(t, s, isa.MakeInst(st, isa.MemOp(isa.RSI, 4), isa.XmmOp(3)))
	step1(t, s, isa.MakeInst(ld, isa.XmmOp(4), isa.MemOp(isa.RSI, 4)))
	if s.XMM[4] != s.XMM[3] {
		t.Fatalf("movupd round trip: %#x", s.XMM[4])
	}
}

func TestExtendedOpsInDeterministicPool(t *testing.T) {
	// The new families must be available to the generator.
	found := 0
	for _, id := range isa.Deterministic() {
		op := isa.Lookup(id).Op
		if op >= isa.NumOps && op < isa.NumOpsExt {
			found++
		}
	}
	if found < 100 {
		t.Fatalf("only %d extended variants in the deterministic pool", found)
	}
}
