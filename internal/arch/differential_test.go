package arch

import (
	"math/bits"
	"math/rand/v2"
	"testing"

	"harpocrates/internal/isa"
)

// refFn computes the expected (result, writesBack) for a binary ALU
// family at a given width, mirroring x86 semantics.
type refFn func(a, b uint64, w isa.Width) (uint64, bool)

// TestBulkALUDifferential sweeps every register-register ALU variant at
// every width against an independent Go reference, with random operands.
// It complements the per-family tests with breadth: a semantics
// regression in any family/width combination fails here.
func TestBulkALUDifferential(t *testing.T) {
	refs := map[isa.Op]refFn{
		isa.OpADD: func(a, b uint64, w isa.Width) (uint64, bool) { return (a + b) & w.Mask(), true },
		isa.OpSUB: func(a, b uint64, w isa.Width) (uint64, bool) { return (a - b) & w.Mask(), true },
		isa.OpAND: func(a, b uint64, w isa.Width) (uint64, bool) { return a & b, true },
		isa.OpOR:  func(a, b uint64, w isa.Width) (uint64, bool) { return a | b, true },
		isa.OpXOR: func(a, b uint64, w isa.Width) (uint64, bool) { return a ^ b, true },
		isa.OpCMP: func(a, b uint64, w isa.Width) (uint64, bool) { return a, false },
		isa.OpMOV: func(a, b uint64, w isa.Width) (uint64, bool) { return b & w.Mask(), true },
		isa.OpIMULRR: func(a, b uint64, w isa.Width) (uint64, bool) {
			return (a * b) & w.Mask(), true
		},
		isa.OpXADD: func(a, b uint64, w isa.Width) (uint64, bool) { return (a + b) & w.Mask(), true },
		isa.OpANDN: func(a, b uint64, w isa.Width) (uint64, bool) {
			// andn dst, s1(=a), s2(=b): dst = ^a & b; sources read from
			// distinct registers in the harness below.
			return ^a & b & w.Mask(), true
		},
	}
	rng := rand.New(rand.NewPCG(71, 72))
	checked := 0
	for i := 1; i < isa.NumVariants(); i++ {
		v := isa.Lookup(isa.VariantID(i))
		ref, ok := refs[v.Op]
		if !ok || len(v.Ops) < 2 {
			continue
		}
		// Register-register two-operand forms only.
		if v.Ops[0].Kind != isa.KReg || v.Ops[1].Kind != isa.KReg {
			continue
		}
		threeOp := len(v.Ops) == 3
		if threeOp && v.Ops[2].Kind != isa.KReg {
			continue
		}
		for trial := 0; trial < 200; trial++ {
			s := testState(t)
			a := rng.Uint64() & v.Width.Mask()
			b := rng.Uint64() & v.Width.Mask()
			var in isa.Inst
			if threeOp { // andn dst, s1, s2
				s.GPR[isa.RBX] = a
				s.GPR[isa.RCX] = b
				in = isa.MakeInst(isa.VariantID(i), isa.RegOp(isa.RAX), isa.RegOp(isa.RBX), isa.RegOp(isa.RCX))
			} else {
				s.GPR[isa.RAX] = a
				s.GPR[isa.RBX] = b
				in = isa.MakeInst(isa.VariantID(i), isa.RegOp(isa.RAX), isa.RegOp(isa.RBX))
			}
			before := s.GPR[isa.RAX]
			prog := []isa.Inst{in}
			if err := s.Step(prog); err != nil {
				t.Fatalf("%s: %v", v, err)
			}
			want, writes := ref(a, b, v.Width)
			got := s.GPR[isa.RAX]
			if !writes {
				if got != before {
					t.Fatalf("%s: modified dst on compare-only op", v)
				}
				continue
			}
			// Width rules: 64 full, 32 zero-extends, 8/16 merge.
			var expect uint64
			switch v.Width {
			case isa.W64:
				expect = want
			case isa.W32:
				expect = want & 0xffffffff
			default:
				expect = before&^v.Width.Mask() | want&v.Width.Mask()
			}
			if threeOp {
				expect = want // three-operand dst is written fresh (W32/W64 only)
				if v.Width == isa.W32 {
					expect = want & 0xffffffff
				}
			}
			if got != expect {
				t.Fatalf("%s: op(%#x, %#x) = %#x, want %#x", v, a, b, got, expect)
			}
			checked++
		}
	}
	if checked < 5000 {
		t.Fatalf("bulk differential covered only %d cases", checked)
	}
	t.Logf("bulk ALU differential: %d variant/operand cases checked", checked)
}

// TestBulkShiftDifferential sweeps all immediate-count shifts/rotates
// against Go references.
func TestBulkShiftDifferential(t *testing.T) {
	rng := rand.New(rand.NewPCG(73, 74))
	for i := 1; i < isa.NumVariants(); i++ {
		v := isa.Lookup(isa.VariantID(i))
		if len(v.Ops) != 2 || v.Ops[0].Kind != isa.KReg || v.Ops[1].Kind != isa.KImm {
			continue
		}
		var ref func(a uint64, n uint, w isa.Width) uint64
		switch v.Op {
		case isa.OpSHL:
			ref = func(a uint64, n uint, w isa.Width) uint64 { return a << n & w.Mask() }
		case isa.OpSHR:
			ref = func(a uint64, n uint, w isa.Width) uint64 { return a >> n }
		case isa.OpSAR:
			ref = func(a uint64, n uint, w isa.Width) uint64 {
				return uint64(int64(signExtend(a, w))>>n) & w.Mask()
			}
		case isa.OpROL:
			ref = func(a uint64, n uint, w isa.Width) uint64 {
				nb := uint(w.Bits())
				n %= nb
				if n == 0 {
					return a
				}
				return (a<<n | a>>(nb-n)) & w.Mask()
			}
		case isa.OpROR:
			ref = func(a uint64, n uint, w isa.Width) uint64 {
				nb := uint(w.Bits())
				n %= nb
				if n == 0 {
					return a
				}
				return (a>>n | a<<(nb-n)) & w.Mask()
			}
		default:
			continue
		}
		maskC := uint(63)
		if v.Width != isa.W64 {
			maskC = 31
		}
		for trial := 0; trial < 300; trial++ {
			s := testState(t)
			a := rng.Uint64() & v.Width.Mask()
			// Keep counts within the operand width so the reference
			// stays well-defined (wider counts are covered by the
			// dedicated shift tests).
			n := uint(rng.IntN(v.Width.Bits()))
			_ = maskC
			s.GPR[isa.RAX] = a
			prog := []isa.Inst{isa.MakeInst(isa.VariantID(i), isa.RegOp(isa.RAX), isa.ImmOp(int64(n)))}
			if err := s.Step(prog); err != nil {
				t.Fatalf("%s: %v", v, err)
			}
			want := ref(a, n, v.Width)
			var expect uint64
			switch v.Width {
			case isa.W64:
				expect = want
			case isa.W32:
				expect = want & 0xffffffff
			default:
				expect = a&^v.Width.Mask() | want&v.Width.Mask()
			}
			if got := s.GPR[isa.RAX]; got != expect {
				t.Fatalf("%s(%#x, %d) = %#x, want %#x", v, a, n, got, expect)
			}
		}
	}
}

// TestBulkWideningMultiply sweeps MUL/IMUL one-operand forms across all
// widths against math/bits references.
func TestBulkWideningMultiply(t *testing.T) {
	rng := rand.New(rand.NewPCG(75, 76))
	for _, op := range []isa.Op{isa.OpMUL, isa.OpIMUL} {
		for _, id := range isa.ByOp(op) {
			v := isa.Lookup(id)
			if v.Ops[0].Kind != isa.KReg {
				continue
			}
			for trial := 0; trial < 300; trial++ {
				s := testState(t)
				a := rng.Uint64() & v.Width.Mask()
				b := rng.Uint64() & v.Width.Mask()
				s.GPR[isa.RAX] = a
				s.GPR[isa.RBX] = b
				prog := []isa.Inst{isa.MakeInst(id, isa.RegOp(isa.RBX))}
				if err := s.Step(prog); err != nil {
					t.Fatalf("%s: %v", v, err)
				}
				var wantLo, wantHi uint64
				if op == isa.OpMUL {
					if v.Width == isa.W64 {
						wantHi, wantLo = bits.Mul64(a, b)
					} else {
						p := a * b
						wantLo = p & v.Width.Mask()
						wantHi = p >> uint(v.Width.Bits()) & v.Width.Mask()
					}
				} else {
					sa := signExtend(a, v.Width)
					sb := signExtend(b, v.Width)
					if v.Width == isa.W64 {
						wantHi, wantLo = bits.Mul64(sa, sb)
						if int64(sa) < 0 {
							wantHi -= sb
						}
						if int64(sb) < 0 {
							wantHi -= sa
						}
					} else {
						p := uint64(int64(sa) * int64(sb))
						wantLo = p & v.Width.Mask()
						wantHi = p >> uint(v.Width.Bits()) & v.Width.Mask()
					}
				}
				if got := s.ReadGPR(isa.RAX, v.Width); got != wantLo {
					t.Fatalf("%s lo(%#x,%#x) = %#x, want %#x", v, a, b, got, wantLo)
				}
				if got := s.ReadGPR(isa.RDX, v.Width); got != wantHi {
					t.Fatalf("%s hi(%#x,%#x) = %#x, want %#x", v, a, b, got, wantHi)
				}
			}
		}
	}
}
