package arch

import (
	"math"
	"math/bits"

	"harpocrates/internal/isa"
)

// execShift implements shifts and rotates, including rotate-through-carry
// with the count == register-width corner case that crashed gem5 v22
// (paper §VI-D): the carry bit participates in a (width+1)-bit rotation,
// so a rotate by exactly `width` moves the carry into the top bit and is
// NOT a no-op.
func (s *State) execShift(in *isa.Inst, v *isa.Variant) *CrashError {
	w := v.Width
	nbits := uint(w.Bits())
	var count uint64
	if in.NOps >= 2 && in.Ops[1].Kind == isa.KImm {
		count = uint64(in.Ops[1].Imm)
	} else {
		count = s.GPR[isa.RCX]
	}
	if w == isa.W64 {
		count &= 63
	} else {
		count &= 31
	}
	a, err := s.readOp(&in.Ops[0], w)
	if err != nil {
		return err
	}
	cf := s.Flags&isa.CF != 0
	var res uint64
	switch v.Op {
	case isa.OpSHL:
		if count == 0 {
			return s.writeOp(&in.Ops[0], w, a)
		}
		res = a << count
		outBit := false
		if count <= uint64(nbits) {
			outBit = (a>>(uint64(nbits)-count))&1 != 0
		}
		s.setBool(isa.CF, outBit)
		s.setBool(isa.OF, (res&w.SignBit() != 0) != outBit)
		s.setZSP(res, w)

	case isa.OpSHR:
		if count == 0 {
			return s.writeOp(&in.Ops[0], w, a)
		}
		res = a >> count
		outBit := false
		if count <= 64 {
			outBit = (a>>(count-1))&1 != 0
		}
		s.setBool(isa.CF, outBit)
		s.setBool(isa.OF, a&w.SignBit() != 0)
		s.setZSP(res, w)

	case isa.OpSAR:
		if count == 0 {
			return s.writeOp(&in.Ops[0], w, a)
		}
		sa := int64(signExtend(a, w))
		if count >= 63 {
			count = 63
		}
		res = uint64(sa >> count)
		s.setBool(isa.CF, (uint64(sa)>>(count-1))&1 != 0)
		s.setBool(isa.OF, false)
		s.setZSP(res, w)

	case isa.OpROL:
		n := count % uint64(nbits)
		res = a
		if n != 0 {
			res = (a<<n | a>>(uint64(nbits)-n)) & w.Mask()
		}
		if count != 0 {
			s.setBool(isa.CF, res&1 != 0)
			s.setBool(isa.OF, (res&w.SignBit() != 0) != (res&1 != 0))
		}

	case isa.OpROR:
		n := count % uint64(nbits)
		res = a
		if n != 0 {
			res = (a>>n | a<<(uint64(nbits)-n)) & w.Mask()
		}
		if count != 0 {
			s.setBool(isa.CF, res&w.SignBit() != 0)
			top2 := (res >> (nbits - 2)) & 3
			s.setBool(isa.OF, top2 == 1 || top2 == 2)
		}

	case isa.OpRCL:
		n := count % uint64(nbits+1)
		res = a
		ncf := cf
		if n != 0 {
			ncf = (a>>(uint64(nbits)-n))&1 != 0
			res = a << n
			if cf {
				res |= 1 << (n - 1)
			}
			if n > 1 {
				res |= a >> (uint64(nbits) + 1 - n)
			}
			res &= w.Mask()
		}
		s.setBool(isa.CF, ncf)
		s.setBool(isa.OF, (res&w.SignBit() != 0) != ncf)

	case isa.OpRCR:
		n := count % uint64(nbits+1)
		res = a
		ncf := cf
		if n != 0 {
			ncf = (a>>(n-1))&1 != 0
			res = a >> n
			if cf {
				res |= 1 << (uint64(nbits) - n)
			}
			if n > 1 {
				res |= a << (uint64(nbits) + 1 - n)
			}
			res &= w.Mask()
		}
		s.setBool(isa.CF, ncf)
		s.setBool(isa.OF, (res&w.SignBit() != 0) != (a&w.SignBit() != 0))
	}
	return s.writeOp(&in.Ops[0], w, res)
}

func (s *State) execDiv(in *isa.Inst, v *isa.Variant) *CrashError {
	w := v.Width
	nbits := uint(w.Bits())
	lo := s.ReadGPR(isa.RAX, w)
	hi := s.ReadGPR(isa.RDX, w)
	d, err := s.readOp(&in.Ops[0], w)
	if err != nil {
		return err
	}
	if d == 0 {
		return &CrashError{Kind: CrashDivide}
	}
	var q, r uint64
	if v.Op == isa.OpDIV {
		if w == isa.W64 {
			if hi >= d {
				return &CrashError{Kind: CrashDivide} // quotient overflow
			}
			q, r = bits.Div64(hi, lo, d)
		} else {
			dividend := hi<<nbits | lo
			q = dividend / d
			r = dividend % d
			if q > w.Mask() {
				return &CrashError{Kind: CrashDivide}
			}
		}
	} else { // IDIV
		sd := int64(signExtend(d, w))
		if w == isa.W64 {
			// Signed 128/64 division via magnitudes.
			negDividend := hi&(1<<63) != 0
			mlo, mhi := lo, hi
			if negDividend {
				mlo = -lo
				mhi = ^hi
				if lo == 0 {
					mhi++
				}
			}
			md := uint64(sd)
			negDiv := sd < 0
			if negDiv {
				md = uint64(-sd)
			}
			if mhi >= md {
				return &CrashError{Kind: CrashDivide}
			}
			uq, ur := bits.Div64(mhi, mlo, md)
			negQ := negDividend != negDiv
			if (negQ && uq > 1<<63) || (!negQ && uq > 1<<63-1) {
				return &CrashError{Kind: CrashDivide}
			}
			q = uq
			if negQ {
				q = -uq
			}
			r = ur
			if negDividend {
				r = -ur
			}
		} else {
			dividend := int64(signExtend(hi<<nbits|lo, isa.Width(2*w)))
			iq := dividend / sd
			ir := dividend % sd
			limit := int64(1) << (nbits - 1)
			if iq >= limit || iq < -limit {
				return &CrashError{Kind: CrashDivide}
			}
			q = uint64(iq)
			r = uint64(ir)
		}
	}
	s.WriteGPR(isa.RAX, w, q)
	s.WriteGPR(isa.RDX, w, r)
	return nil
}

func (s *State) execBitScan(in *isa.Inst, v *isa.Variant) *CrashError {
	w := v.Width
	nbits := w.Bits()
	a, err := s.readOp(&in.Ops[1], w)
	if err != nil {
		return err
	}
	var res uint64
	switch v.Op {
	case isa.OpBSF:
		if a == 0 {
			s.Flags |= isa.ZF
			return nil // destination unchanged (we define x86's "undefined")
		}
		s.Flags &^= isa.ZF
		res = uint64(bits.TrailingZeros64(a))
	case isa.OpBSR:
		if a == 0 {
			s.Flags |= isa.ZF
			return nil
		}
		s.Flags &^= isa.ZF
		res = uint64(63 - bits.LeadingZeros64(a))
	case isa.OpPOPCNT:
		res = uint64(bits.OnesCount64(a))
		s.Flags &^= isa.AllFlags
		if res == 0 {
			s.Flags |= isa.ZF
		}
	case isa.OpLZCNT:
		res = uint64(bits.LeadingZeros64(a) - (64 - nbits))
		s.setBool(isa.CF, a == 0)
		s.setBool(isa.ZF, res == 0)
	case isa.OpTZCNT:
		if a == 0 {
			res = uint64(nbits)
		} else {
			res = uint64(bits.TrailingZeros64(a))
		}
		s.setBool(isa.CF, a == 0)
		s.setBool(isa.ZF, res == 0)
	}
	s.WriteGPR(in.Ops[0].Reg, w, res)
	return nil
}

// writeX writes a 128-bit (or narrower) value to an xmm or memory
// operand.
func (s *State) writeX(op *isa.Operand, w isa.Width, val [2]uint64) *CrashError {
	switch op.Kind {
	case isa.KXmm:
		s.XMM[op.X] = val
		return nil
	case isa.KMem:
		addr := s.EffAddr(op.Mem)
		if w == isa.W128 {
			if addr&15 != 0 {
				return &CrashError{Kind: CrashMisaligned, Addr: addr}
			}
			return s.Mem.Write128(addr, val)
		}
		return s.Mem.Write(addr, uint64(w), val[0])
	}
	return &CrashError{Kind: CrashInvalidOpcode}
}

func f64(b uint64) float64  { return math.Float64frombits(b) }
func b64(f float64) uint64  { return math.Float64bits(f) }
func f32(b uint64) float32  { return math.Float32frombits(uint32(b)) }
func b32l(f float32) uint64 { return uint64(math.Float32bits(f)) }

func (s *State) execSSE(in *isa.Inst, v *isa.Variant) *CrashError {
	switch v.Op {
	case isa.OpADDSD, isa.OpSUBSD, isa.OpMULSD, isa.OpDIVSD, isa.OpMINSD, isa.OpMAXSD:
		src, err := s.readX(&in.Ops[1], isa.W64)
		if err != nil {
			return err
		}
		x := in.Ops[0].X
		a, b := s.XMM[x][0], src[0]
		var r uint64
		switch v.Op {
		case isa.OpADDSD:
			r = s.fpAdd64(a, b)
		case isa.OpSUBSD:
			r = s.fpSub64(a, b)
		case isa.OpMULSD:
			r = s.fpMul64(a, b)
		case isa.OpDIVSD:
			r = b64(f64(a) / f64(b))
		case isa.OpMINSD:
			if f64(a) < f64(b) {
				r = a
			} else {
				r = b
			}
		case isa.OpMAXSD:
			if f64(a) > f64(b) {
				r = a
			} else {
				r = b
			}
		}
		s.XMM[x][0] = r

	case isa.OpSQRTSD:
		src, err := s.readX(&in.Ops[1], isa.W64)
		if err != nil {
			return err
		}
		s.XMM[in.Ops[0].X][0] = b64(math.Sqrt(f64(src[0])))

	case isa.OpADDSS, isa.OpSUBSS, isa.OpMULSS, isa.OpDIVSS:
		src, err := s.readX(&in.Ops[1], isa.W32)
		if err != nil {
			return err
		}
		x := in.Ops[0].X
		a := uint32(s.XMM[x][0])
		b := uint32(src[0])
		var r uint32
		switch v.Op {
		case isa.OpADDSS:
			r = s.fpAdd32(a, b)
		case isa.OpSUBSS:
			r = s.fpAdd32(a, b^(1<<31))
		case isa.OpMULSS:
			r = s.fpMul32(a, b)
		case isa.OpDIVSS:
			r = math.Float32bits(math.Float32frombits(a) / math.Float32frombits(b))
		}
		s.XMM[x][0] = s.XMM[x][0]&^0xffffffff | uint64(r)

	case isa.OpADDPD, isa.OpSUBPD, isa.OpMULPD, isa.OpDIVPD:
		src, err := s.readX(&in.Ops[1], isa.W128)
		if err != nil {
			return err
		}
		x := in.Ops[0].X
		for lane := 0; lane < 2; lane++ {
			a, b := s.XMM[x][lane], src[lane]
			switch v.Op {
			case isa.OpADDPD:
				s.XMM[x][lane] = s.fpAdd64(a, b)
			case isa.OpSUBPD:
				s.XMM[x][lane] = s.fpSub64(a, b)
			case isa.OpMULPD:
				s.XMM[x][lane] = s.fpMul64(a, b)
			case isa.OpDIVPD:
				s.XMM[x][lane] = b64(f64(a) / f64(b))
			}
		}

	case isa.OpCVTSI2SD:
		srcW := v.Ops[1].Width
		a, err := s.readOp(&in.Ops[1], srcW)
		if err != nil {
			return err
		}
		s.XMM[in.Ops[0].X][0] = b64(float64(int64(signExtend(a, srcW))))

	case isa.OpCVTSD2SI, isa.OpCVTTSD2SI:
		f := f64(s.XMM[in.Ops[1].X][0])
		var g float64
		if v.Op == isa.OpCVTSD2SI {
			g = math.RoundToEven(f)
		} else {
			g = math.Trunc(f)
		}
		w := v.Width
		indefinite := uint64(1) << (uint(w.Bits()) - 1)
		var res uint64
		limit := math.Ldexp(1, w.Bits()-1)
		if math.IsNaN(g) || g >= limit || g < -limit {
			res = indefinite
		} else {
			res = uint64(int64(g))
		}
		s.WriteGPR(in.Ops[0].Reg, w, res)

	case isa.OpCVTSD2SS:
		src, err := s.readX(&in.Ops[1], isa.W64)
		if err != nil {
			return err
		}
		x := in.Ops[0].X
		s.XMM[x][0] = s.XMM[x][0]&^0xffffffff | b32l(float32(f64(src[0])))

	case isa.OpCVTSS2SD:
		src, err := s.readX(&in.Ops[1], isa.W32)
		if err != nil {
			return err
		}
		s.XMM[in.Ops[0].X][0] = b64(float64(f32(src[0])))

	case isa.OpMOVSD:
		switch {
		case in.Ops[0].Kind == isa.KXmm && in.Ops[1].Kind == isa.KXmm:
			s.XMM[in.Ops[0].X][0] = s.XMM[in.Ops[1].X][0]
		case in.Ops[0].Kind == isa.KXmm:
			src, err := s.readX(&in.Ops[1], isa.W64)
			if err != nil {
				return err
			}
			s.XMM[in.Ops[0].X] = [2]uint64{src[0], 0}
		default:
			return s.writeX(&in.Ops[0], isa.W64, s.XMM[in.Ops[1].X])
		}

	case isa.OpMOVAPD:
		if in.Ops[0].Kind == isa.KXmm {
			src, err := s.readX(&in.Ops[1], isa.W128)
			if err != nil {
				return err
			}
			s.XMM[in.Ops[0].X] = src
		} else {
			return s.writeX(&in.Ops[0], isa.W128, s.XMM[in.Ops[1].X])
		}

	case isa.OpMOVQXR:
		s.XMM[in.Ops[0].X] = [2]uint64{s.GPR[in.Ops[1].Reg], 0}

	case isa.OpMOVQRX:
		s.GPR[in.Ops[0].Reg] = s.XMM[in.Ops[1].X][0]

	case isa.OpPXOR, isa.OpPAND, isa.OpPOR, isa.OpPADDQ, isa.OpPADDD, isa.OpPSUBQ, isa.OpPMULLD:
		src, err := s.readX(&in.Ops[1], isa.W128)
		if err != nil {
			return err
		}
		x := in.Ops[0].X
		for lane := 0; lane < 2; lane++ {
			a, b := s.XMM[x][lane], src[lane]
			switch v.Op {
			case isa.OpPXOR:
				s.XMM[x][lane] = a ^ b
			case isa.OpPAND:
				s.XMM[x][lane] = a & b
			case isa.OpPOR:
				s.XMM[x][lane] = a | b
			case isa.OpPADDQ:
				s.XMM[x][lane] = a + b
			case isa.OpPSUBQ:
				s.XMM[x][lane] = a - b
			case isa.OpPADDD:
				s.XMM[x][lane] = (a+b)&0xffffffff | (a>>32+b>>32)<<32
			case isa.OpPMULLD:
				lo := uint32(a) * uint32(b)
				hi := uint32(a>>32) * uint32(b>>32)
				s.XMM[x][lane] = uint64(lo) | uint64(hi)<<32
			}
		}

	case isa.OpUCOMISD:
		src, err := s.readX(&in.Ops[1], isa.W64)
		if err != nil {
			return err
		}
		a := f64(s.XMM[in.Ops[0].X][0])
		b := f64(src[0])
		s.Flags &^= isa.AllFlags
		switch {
		case math.IsNaN(a) || math.IsNaN(b):
			s.Flags |= isa.ZF | isa.PF | isa.CF
		case a < b:
			s.Flags |= isa.CF
		case a == b:
			s.Flags |= isa.ZF
		}

	case isa.OpSHUFPD:
		src, err := s.readX(&in.Ops[1], isa.W128)
		if err != nil {
			return err
		}
		x := in.Ops[0].X
		imm := uint64(in.Ops[2].Imm)
		s.XMM[x] = [2]uint64{s.XMM[x][imm&1], src[(imm>>1)&1]}

	case isa.OpUNPCKLPD:
		src, err := s.readX(&in.Ops[1], isa.W128)
		if err != nil {
			return err
		}
		x := in.Ops[0].X
		s.XMM[x] = [2]uint64{s.XMM[x][0], src[0]}

	case isa.OpUNPCKHPD:
		src, err := s.readX(&in.Ops[1], isa.W128)
		if err != nil {
			return err
		}
		x := in.Ops[0].X
		s.XMM[x] = [2]uint64{s.XMM[x][1], src[1]}

	default:
		return &CrashError{Kind: CrashInvalidOpcode}
	}
	return nil
}
