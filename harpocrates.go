// Package harpocrates is the public API of the Harpocrates
// reproduction: automated, hardware-model-in-the-loop generation of
// short constrained-random functional test programs that maximize fault
// detection in target CPU structures (Karystinos et al., ISCA 2024).
//
// The three components of the methodology map onto this API:
//
//   - Generator/Mutator: Generate produces valid deterministic random
//     programs; the loop's mutation engine refines them (§V).
//   - Evaluator: Simulate grades a program on the out-of-order core
//     model, producing the hardware-coverage snapshot (§II-D).
//   - The loop: Evolve runs the full generate→evaluate→select→mutate
//     refinement (§IV, Fig. 7); Preset returns the paper's per-structure
//     configurations (§VI-B).
//
// Final program quality is measured with statistical fault injection:
// MeasureDetection runs a GeFIN-style campaign (§II-E) with the paper's
// fault models — uniform-random transient bit flips for the register
// file and L1D cache, gate-level stuck-at faults simulated on structural
// netlists for the integer and SSE floating-point units.
//
// A minimal session:
//
//	opts := harpocrates.Preset(harpocrates.IntAdder, 1)
//	res, _ := harpocrates.Evolve(opts)
//	best := harpocrates.BestProgram(res, &opts)
//	stats, _ := harpocrates.MeasureDetection(best, harpocrates.IntAdder, 100, 1)
//	fmt.Println(stats)
package harpocrates

import (
	"io"
	"math/rand/v2"

	"harpocrates/internal/core"
	"harpocrates/internal/coverage"
	"harpocrates/internal/gen"
	"harpocrates/internal/inject"
	"harpocrates/internal/obs"
	"harpocrates/internal/prog"
	"harpocrates/internal/uarch"
)

// Structure identifies a target hardware structure.
type Structure = coverage.Structure

// The six structures of the paper's evaluation (§III-B2), plus the
// extension targets: the FP register file and the post-paper
// microarchitectural fault sites (decoder, branch predictor, store
// buffer, ROB metadata, L2 tags — SFI-only, transient faults).
const (
	IRF      = coverage.IRF
	L1D      = coverage.L1D
	FPRF     = coverage.FPRF // extension target (not in the paper's six)
	IntAdder = coverage.IntAdder
	IntMul   = coverage.IntMul
	FPAdd    = coverage.FPAdd
	FPMul    = coverage.FPMul
	Decoder  = coverage.Decoder
	Gshare   = coverage.Gshare
	LSQ      = coverage.LSQ
	ROBMeta  = coverage.ROBMeta
	L2Tags   = coverage.L2Tags
)

// Re-exported configuration and result types.
type (
	// Program is a self-contained runnable functional test program.
	Program = prog.Program
	// GenConfig parameterizes constrained-random generation (§V-D).
	GenConfig = gen.Config
	// Genotype is the mutable representation the loop evolves (variant
	// sequence + operand seed), exposed through LoopOptions.Seeds.
	Genotype = gen.Genotype
	// LoopOptions parameterizes the refinement loop (§IV).
	LoopOptions = core.Options
	// LoopResult is the outcome of a refinement run.
	LoopResult = core.Result
	// Individual is one member of the refinement population with its
	// evaluation (exposed through LoopOptions.OnIteration/OnTopK).
	Individual = core.Individual
	// SimResult is one simulated execution with coverage data.
	SimResult = uarch.Result
	// CoreConfig parameterizes the microarchitectural model.
	CoreConfig = uarch.Config
	// DetectionStats summarizes a fault-injection campaign.
	DetectionStats = inject.Stats
	// Campaign is a configurable fault-injection campaign.
	Campaign = inject.Campaign
	// Metric is a coverage objective function.
	Metric = coverage.Metric
	// Observer carries the observability layer (metrics + trace) into
	// the loop and campaigns via LoopOptions.Obs / Campaign.Obs.
	Observer = obs.Observer
	// Metrics is a registry of counters, gauges and histograms.
	Metrics = obs.Registry
	// Tracer emits a structured JSONL event log.
	Tracer = obs.Tracer
)

// NewMetrics returns an empty metrics registry.
func NewMetrics() *Metrics { return obs.NewRegistry() }

// NewTracer returns a tracer writing JSONL events to w.
func NewTracer(w io.Writer) *Tracer { return obs.NewTracer(w) }

// NewObserver bundles a metrics registry and/or tracer into an Observer
// (either may be nil; both nil returns a nil, fully no-op Observer).
func NewObserver(reg *Metrics, tr *Tracer) *Observer { return obs.New(reg, tr) }

// DefaultGenConfig returns the default generator configuration
// (10K instructions, uniform selection over the deterministic pool,
// max-dependency-distance allocation, strided 32 KB memory region).
func DefaultGenConfig() GenConfig { return gen.DefaultConfig() }

// DefaultCoreConfig returns the reference out-of-order core model
// configuration.
func DefaultCoreConfig() CoreConfig { return uarch.DefaultConfig() }

// Preset returns the paper's loop configuration for a structure (§VI-B),
// scaled: 1 is laptop/CI scale; larger values approach paper scale.
func Preset(st Structure, scale int) LoopOptions { return core.PresetFor(st, scale) }

// Evolve runs the Harpocrates refinement loop.
func Evolve(o LoopOptions) (*LoopResult, error) { return core.Run(o) }

// BestProgram materializes the fittest genotype of a finished run.
func BestProgram(res *LoopResult, o *LoopOptions) *Program {
	return gen.Materialize(res.Best.G, &o.Gen)
}

// Generate produces one valid, deterministic, non-crashing random test
// program from a generator configuration.
func Generate(cfg *GenConfig, seed uint64) *Program {
	rng := rand.New(rand.NewPCG(seed, seed^0xda3e39cb94b95bdb))
	return gen.Materialize(gen.NewRandom(cfg, rng), cfg)
}

// Simulate runs a program on the out-of-order core model with coverage
// tracking for the given structure and returns the result (the
// Evaluator's grading step).
func Simulate(p *Program, st Structure) *SimResult {
	cfg := uarch.DefaultConfig()
	switch st {
	case IRF:
		cfg.TrackIRF = true
	case L1D:
		cfg.TrackL1D = true
	case FPRF:
		cfg.TrackFPRF = true
	default:
		// Functional units are graded by IBR; the microarchitectural
		// fault sites (decoder, gshare, LSQ, ROB metadata, L2 tags) have
		// no coverage tracker — they are SFI-only targets.
		if st.IsFunctionalUnit() {
			cfg.TrackIBR = true
		}
	}
	return uarch.Run(p.Insts, p.NewState(), cfg)
}

// NewDetectionCampaign builds the standard statistical fault-injection
// campaign for a program: the structure's default fault model (transient
// bit flips for bit arrays, permanent gate-level stuck-at faults for
// functional units) on the reference core. Adjust fields (e.g. attach an
// Observer via Obs) before calling Run.
func NewDetectionCampaign(p *Program, st Structure, injections int, seed uint64) *Campaign {
	return &inject.Campaign{
		Prog:   p.Insts,
		Init:   p.InitFunc(),
		Target: st,
		Type:   inject.DefaultFaultType(st),
		N:      injections,
		Seed:   seed,
		Cfg:    uarch.DefaultConfig(),
	}
}

// MeasureDetection runs a statistical fault-injection campaign against
// the structure's default fault model (transient bit flips for bit
// arrays, permanent gate-level stuck-at faults for functional units) and
// returns the detection statistics.
func MeasureDetection(p *Program, st Structure, injections int, seed uint64) (*DetectionStats, error) {
	return NewDetectionCampaign(p, st, injections, seed).Run()
}
